"""``repro-racecheck`` — run a user program file under a race detector.

The command-line face of the library, analogous to running an HJ program
with the instrumented runtime:

    repro-racecheck my_program.py [--detector dtrg|exact|espbags|spbags|
                                   spd3|offset-span|vector-clock|brute-force|
                                   parallel]
                                  [--runtime serial|threads|asyncio]
                                  [--workers N]
                                  [--policy collect|raise]
                                  [--dot graph.dot] [--trace out.trace]
                                  [--metrics] [--witness]
                                  [--jobs N] [--parallel-backend auto|fork|
                                   spawn|inline]
                                  [--fast]
                                  [--perfetto out.json]
                                  [--metrics-json out-metrics.json]
                                  [--explain] [--verify-witness]
                                  [--witness-json out.json] [--html out.html]

``--perfetto`` records the run through :mod:`repro.obs` and writes a
Chrome trace-event JSON loadable in Perfetto / ``chrome://tracing``:
task lifetimes and finish scopes as duration spans, ``get()`` joins,
DTRG mutations, PRECEDE queries (with cache outcome and visited-set
size) and shadow checks as instant events.  ``--metrics-json`` dumps the
companion counter/histogram registry (PRECEDE latency, ``_explore``
frontier sizes, per-cell reader populations, cache hit rate per
mutation-epoch window).  Either flag enables the instrumentation; the
detailed DTRG/shadow hooks require ``--detector dtrg``.

``--explain`` turns on race provenance (``--detector dtrg`` only): every
spawn/get/read/write is attributed to its source call site by a bounded
flight recorder, and each deduplicated race gets a machine-checkable
witness — a non-ordering certificate reconstructed from the DTRG showing
the interval labels, set representatives, LSA chain and exhausted VISIT
frontier that prove ``PRECEDE`` is false both ways.  ``--witness-json``
writes the certificates as ``repro.race-witness-report/1`` JSON (validated
by ``python -m repro.obs.validate``), ``--html`` writes a self-contained
HTML report, and ``--verify-witness`` independently confirms every witness
against the brute-force transitive closure of the computation graph
(exit 2 if any check fails).  Any of these flags implies ``--explain``.

``--jobs N`` (N > 1) switches to the two-phase sharded checker: the
program runs once with only a :class:`~repro.memory.tracer.TraceRecorder`
attached (near-zero detection overhead), then the recorded stream is
checked by ``N`` worker processes over a frozen array-backed DTRG
snapshot (``docs/ALGORITHM.md`` §12).  The race list, the printed
summary and the exit code are bit-identical to the sequential
``--detector dtrg`` run.  Post-hoc checking cannot abort the program at
the first race and has no live DTRG to certify witnesses from, so
``--jobs`` rejects ``--policy raise`` and the ``--explain`` family;
``--detector`` must be ``dtrg``.

``--fast`` is the single-thread batched counterpart of ``--jobs``: the
program runs once with only the trace recorder attached, the stream is
lowered to an :class:`~repro.core.events.EncodedTrace` and checked by
``check_trace_fast`` (``docs/ALGORITHM.md`` §13.3) — same race list,
summary and exit code as the sequential ``--detector dtrg`` run, at
1M+ access-checks/s.  The same restrictions as ``--jobs`` apply (dtrg
only, no ``--policy raise``, no ``--explain`` family), and — like the
``--jobs`` path since PR 5 — a user-program abort during the recording
phase still writes every requested ``--dot``/``--trace``/``--metrics``
artifact and exits 2.

``--runtime threads`` executes the program on the work-stealing
:class:`~repro.runtime.executor.ThreadRuntime` (``--workers N`` sets the
pool size) and ``--runtime asyncio`` on the cooperative
:class:`~repro.runtime.asyncio_runtime.AsyncioRuntime` (the program file
must then define ``async def program(rt)``), with detection running
*online during the parallel execution*.  Both force ``--detector
parallel`` (:class:`~repro.core.parallel_detector.ParallelRaceDetector`,
the one engine whose verdicts are exact under any schedule — the DTRG
family assumes the serial depth-first event order, see README "Choosing
a runtime") and reject the flags whose machinery assumes that order:
``--jobs``/``--fast`` (post-hoc replay), the ``--explain`` family
(call-site provenance), and ``--dot``/``--trace``/``--witness``/
``--verify-witness`` (computation-graph reconstruction).  The printed
``racy location`` set matches the serial run; which unordered access of
a pair lands second — and hence pair order in the report — may differ
across schedules.

``my_program.py`` must define ``def program(rt):`` (and may define
``def setup(rt):`` returning shared state passed as the second argument).
The file is executed with a fresh :class:`~repro.runtime.runtime.Runtime`;
every shared wrapper it creates against ``rt`` is instrumented.

Exit status: 0 = race-free, 1 = races found, 2 = unsupported construct for
the chosen detector (or other errors, including exceptions raised by the
user program itself).

Whatever artifacts were requested (``--dot``/``--trace``/``--metrics``) are
written from the observers' recorded state even when the run aborts early —
a ``--policy raise`` abort or a crash in the user program still yields the
graph/trace collected up to that point.
"""

from __future__ import annotations

import argparse
import runpy
import sys
from typing import List

from repro.baselines import (
    BruteForceDetector,
    ESPBagsDetector,
    OffsetSpanDetector,
    SPBagsDetector,
    SPD3Detector,
    VectorClockDetector,
)
from repro.core.detector import DeterminacyRaceDetector
from repro.core.exact import ExactDetector
from repro.core.parallel_detector import ParallelRaceDetector
from repro.graph import GraphBuilder, ReachabilityClosure, to_dot
from repro.harness.metrics import MetricsCollector
from repro.core.events import ExecutionObserver
from repro.memory.tracer import TraceRecorder, replay_trace_parallel
from repro.runtime.errors import RaceError, UnsupportedConstructError
from repro.runtime.asyncio_runtime import AsyncioRuntime
from repro.runtime.executor import ThreadRuntime
from repro.runtime.parallel import demonstrate_nondeterminism
from repro.runtime.runtime import Runtime

__all__ = ["main", "DETECTORS"]

DETECTORS = {
    "dtrg": DeterminacyRaceDetector,
    "exact": ExactDetector,
    "espbags": ESPBagsDetector,
    "spbags": SPBagsDetector,
    "spd3": SPD3Detector,
    "offset-span": OffsetSpanDetector,
    "vector-clock": VectorClockDetector,
    "brute-force": BruteForceDetector,
    "parallel": ParallelRaceDetector,
}


class _NameCapture(ExecutionObserver):
    """Record live task names so parallel races print like the live run."""

    def __init__(self) -> None:
        self.names = {}

    def on_init(self, main_task) -> None:
        self.names[main_task.tid] = main_task.name

    def on_task_create(self, parent, child) -> None:
        self.names[child.tid] = child.name


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-racecheck", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("program", help="python file defining program(rt)")
    parser.add_argument("--detector", default=None, choices=DETECTORS,
                        help="detection engine (default: dtrg on the "
                             "serial runtime, parallel otherwise)")
    parser.add_argument("--runtime", default="serial",
                        choices=("serial", "threads", "asyncio"),
                        help="execution substrate: the serial depth-first "
                             "elision (default), the work-stealing "
                             "ThreadRuntime, or the cooperative "
                             "AsyncioRuntime (requires async def program)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker-thread count for --runtime threads")
    parser.add_argument("--policy", default="collect",
                        choices=("collect", "raise"))
    parser.add_argument("--dot", metavar="FILE",
                        help="write the computation graph as Graphviz DOT")
    parser.add_argument("--trace", metavar="FILE",
                        help="save the instrumentation trace (pickle)")
    parser.add_argument("--metrics", action="store_true",
                        help="print structural counters")
    parser.add_argument("--witness", action="store_true",
                        help="print two schedules whose outcomes differ "
                             "for each racy location")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="check accesses with N worker processes via "
                             "the two-phase sharded checker (dtrg only; "
                             "identical races/summary/exit code)")
    parser.add_argument("--parallel-backend", dest="parallel_backend",
                        default=None,
                        choices=("auto", "fork", "spawn", "inline"),
                        help="worker dispatch for --jobs (default auto: "
                             "fork where available, else spawn)")
    parser.add_argument("--fast", action="store_true",
                        help="check via the batched single-thread fast "
                             "path: record the trace, lower it to an "
                             "EncodedTrace, run check_trace_fast (dtrg "
                             "only; identical races/summary/exit code)")
    parser.add_argument("--perfetto", metavar="FILE",
                        help="write a Chrome trace-event JSON "
                             "(Perfetto/chrome://tracing)")
    parser.add_argument("--metrics-json", metavar="FILE", dest="metrics_json",
                        help="write the observability counter/histogram "
                             "registry as JSON")
    parser.add_argument("--explain", action="store_true",
                        help="attribute accesses to source sites and print "
                             "a non-ordering witness per race (dtrg only)")
    parser.add_argument("--witness-json", metavar="FILE", dest="witness_json",
                        help="write the race witnesses as JSON "
                             "(implies --explain)")
    parser.add_argument("--html", metavar="FILE",
                        help="write a self-contained HTML race report "
                             "(implies --explain)")
    parser.add_argument("--verify-witness", action="store_true",
                        dest="verify_witness",
                        help="cross-check every witness against the "
                             "brute-force computation graph "
                             "(implies --explain; exit 2 on mismatch)")
    parser.add_argument("--serve-metrics", type=int, default=None,
                        metavar="PORT", dest="serve_metrics",
                        help="serve live telemetry over HTTP while the "
                             "check runs: /metrics (Prometheus text "
                             "exposition), /healthz, /snapshot (JSON). "
                             "PORT 0 binds an ephemeral port (printed to "
                             "stderr)")
    parser.add_argument("--heartbeat", type=float, default=0.0,
                        metavar="SECS",
                        help="print a progress heartbeat line to stderr "
                             "every SECS seconds (events processed, races "
                             "so far, ETA); 0 disables (default)")
    parser.add_argument("--sample-interval", type=float, default=0.25,
                        metavar="SECS", dest="sample_interval",
                        help="live-telemetry sampler cadence "
                             "(default 0.25)")
    args = parser.parse_args(argv)

    if args.heartbeat < 0:
        print("error: --heartbeat must be >= 0", file=sys.stderr)
        return 2
    if args.sample_interval <= 0:
        print("error: --sample-interval must be > 0", file=sys.stderr)
        return 2

    concurrent = args.runtime != "serial"
    if args.detector is None:
        args.detector = "parallel" if concurrent else "dtrg"
    if concurrent and args.detector != "parallel":
        print(f"error: --runtime {args.runtime} executes a real parallel "
              f"schedule; --detector {args.detector} assumes the serial "
              "depth-first event order and its answers would be undefined. "
              "Use --detector parallel (the default for this runtime)",
              file=sys.stderr)
        return 2
    if args.workers is not None and args.runtime != "threads":
        print("error: --workers only applies to --runtime threads",
              file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if concurrent:
        blocked = [
            (args.jobs > 1, "--jobs"),
            (args.fast, "--fast"),
            (args.explain, "--explain"),
            (args.witness_json is not None, "--witness-json"),
            (args.html is not None, "--html"),
            (args.verify_witness, "--verify-witness"),
            (args.dot is not None, "--dot"),
            (args.trace is not None, "--trace"),
            (args.witness, "--witness"),
        ]
        offending = [flag for cond, flag in blocked if cond]
        if offending:
            print(f"error: {', '.join(offending)} assume(s) the serial "
                  "depth-first event order (trace replay, provenance and "
                  "computation-graph reconstruction are undefined under a "
                  f"parallel schedule); drop it or drop --runtime "
                  f"{args.runtime}", file=sys.stderr)
            return 2

    explain = (args.explain or args.witness_json is not None
               or args.html is not None or args.verify_witness)
    if explain and args.detector != "dtrg":
        print("error: --explain/--witness-json/--html/--verify-witness "
              "require --detector dtrg (witnesses are DTRG certificates)",
              file=sys.stderr)
        return 2

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    parallel = args.jobs > 1
    if parallel and args.fast:
        print("error: --fast is the single-thread batched checker; "
              "use either --fast or --jobs N", file=sys.stderr)
        return 2
    if parallel or args.fast:
        flag = "--jobs" if parallel else "--fast"
        if args.detector != "dtrg":
            print(f"error: {flag} requires --detector dtrg (the batched "
                  "checkers implement the DTRG algorithm)", file=sys.stderr)
            return 2
        if args.policy == "raise":
            print(f"error: {flag} checks post-hoc and cannot abort at the "
                  "first race; use --policy collect", file=sys.stderr)
            return 2
        if explain:
            print(f"error: {flag} cannot certify witnesses (no live DTRG); "
                  "drop --explain/--witness-json/--html/--verify-witness",
                  file=sys.stderr)
            return 2

    try:
        namespace = runpy.run_path(args.program)
    except Exception as exc:
        print(f"error: loading {args.program} failed: "
              f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    entry = namespace.get("program")
    if not callable(entry):
        print(f"error: {args.program} does not define program(rt)",
              file=sys.stderr)
        return 2
    import inspect

    if args.runtime == "asyncio" and not inspect.iscoroutinefunction(entry):
        print(f"error: --runtime asyncio requires {args.program} to define "
              "async def program(rt) (the serial and threads runtimes take "
              "the synchronous form)", file=sys.stderr)
        return 2
    if args.runtime != "asyncio" and inspect.iscoroutinefunction(entry):
        print(f"error: {args.program} defines async def program(rt); "
              "run it with --runtime asyncio", file=sys.stderr)
        return 2

    obs = None
    if args.perfetto or args.metrics_json:
        from repro.obs import Observability, RingTracer

        obs = Observability(
            tracer=RingTracer() if args.perfetto else None
        )
    provenance = None
    if explain:
        from repro.obs import RaceProvenance

        provenance = RaceProvenance()
    name_capture = None
    if parallel or args.fast:
        # Two-phase mode: phase 1 records the stream (no detector in the
        # loop), phase 2 replays it through the sharded or batched
        # checker.  Live task names are captured so post-hoc races print
        # identically to live.  The abort handlers below cover phase 1
        # for both checkers: a user-program crash or unsupported
        # construct still flushes every requested artifact and exits 2.
        detector = None
        observers: List = []
        name_capture = _NameCapture()
        observers.append(name_capture)
    elif args.detector == "dtrg" and (obs is not None or provenance is not None):
        detector = DETECTORS[args.detector](
            policy=args.policy, obs=obs, provenance=provenance
        )
        observers = [detector]
    else:
        detector = DETECTORS[args.detector](policy=args.policy)
        observers = [detector]
    graph_builder = None
    if args.dot or args.witness or args.verify_witness:
        graph_builder = GraphBuilder()
        observers.append(graph_builder)
    metrics = None
    if args.metrics:
        metrics = MetricsCollector()
        observers.append(metrics)
    recorder = None
    if args.trace or parallel or args.fast:
        recorder = TraceRecorder()
        observers.append(recorder)

    def write_artifacts() -> None:
        """Flush whatever the observers recorded — also on aborted runs."""
        witnesses = getattr(detector, "witnesses", None) or []
        if metrics is not None:
            snap = metrics.snapshot()
            print(f"\ntasks: {snap.num_tasks} "
                  f"({snap.num_future_tasks} futures), "
                  f"gets: {snap.num_gets} ({snap.num_nt_joins} non-tree), "
                  f"shared accesses: {snap.num_shared_accesses}")
        dot_source = None
        if graph_builder is not None and (args.dot or args.html):
            dot_source = to_dot(
                graph_builder.graph, title=args.program,
                witnesses=witnesses if explain else None,
            )
        if args.dot and dot_source is not None:
            with open(args.dot, "w") as fh:
                fh.write(dot_source)
            print(f"computation graph written to {args.dot}")
        if args.witness_json:
            import json

            from repro.obs import witness_report_data

            with open(args.witness_json, "w") as fh:
                json.dump(
                    witness_report_data(witnesses, program=args.program),
                    fh, indent=2,
                )
            print(f"{len(witnesses)} witness(es) written to "
                  f"{args.witness_json}")
        if args.html:
            from repro.obs import render_html_report

            with open(args.html, "w") as fh:
                fh.write(render_html_report(
                    program=args.program,
                    report=detector.report,
                    witnesses=witnesses,
                    provenance=provenance,
                    dot_source=dot_source,
                ))
            print(f"HTML report written to {args.html}")
        if args.trace and recorder is not None:
            recorder.trace.save(args.trace)
            print(f"trace ({len(recorder.trace)} events) "
                  f"written to {args.trace}")
        if args.perfetto and obs is not None:
            obs.write_trace(args.perfetto)
            print(f"perfetto trace written to {args.perfetto}")
        if args.metrics_json and obs is not None:
            obs.write_metrics(args.metrics_json)
            print(f"metrics written to {args.metrics_json}")

    if args.runtime == "threads":
        rt = ThreadRuntime(observers=observers, obs=obs, workers=args.workers)
    elif args.runtime == "asyncio":
        rt = AsyncioRuntime(observers=observers, obs=obs)
    else:
        rt = Runtime(observers=observers, obs=obs, provenance=provenance)

    telemetry = None
    if args.serve_metrics is not None or args.heartbeat > 0:
        from repro.obs.live import LiveTelemetry

        telemetry = LiveTelemetry(
            registry=obs.registry if obs is not None else None,
            tracer=obs.tracer if obs is not None else None,
            port=args.serve_metrics,
            interval=args.sample_interval,
            heartbeat=args.heartbeat,
        )
        if detector is not None:
            telemetry.attach_detector(detector)
        telemetry.attach_runtime(rt)  # no-op for runtimes without deques
        telemetry.start()
        if telemetry.url:
            print(f"serving live metrics at {telemetry.url}/metrics "
                  f"(snapshot: {telemetry.url}/snapshot)", file=sys.stderr)
        telemetry.progress.set_phase(
            "record" if (parallel or args.fast) else "execute"
        )
    progress = telemetry.progress if telemetry is not None else None

    setup = namespace.get("setup")
    try:
        try:
            if callable(setup):
                state = setup(rt)
                if args.runtime == "asyncio":

                    async def _entry(r):
                        return await entry(r, state)

                    rt.run(_entry)
                else:
                    rt.run(lambda r: entry(r, state))
            else:
                rt.run(entry)
        except RaceError as exc:
            print(f"RACE (aborted at first): {exc}")
            write_artifacts()
            return 1
        except UnsupportedConstructError as exc:
            print(f"unsupported construct for --detector {args.detector}: {exc}",
                  file=sys.stderr)
            write_artifacts()
            return 2
        except Exception as exc:
            print(f"error: {args.program} raised "
                  f"{type(exc).__name__}: {exc}", file=sys.stderr)
            write_artifacts()
            return 2

        if parallel:
            result = replay_trace_parallel(
                recorder.trace,
                jobs=args.jobs,
                backend=args.parallel_backend,
                names=name_capture.names,
                obs=obs,
                progress=progress,
            )
            detector = result  # duck-typed: .report / .races / .witnesses
            if args.metrics:
                timings = result.timings
                print(f"parallel check: jobs={result.jobs} "
                      f"backend={result.backend} shards={len(result.shards)} "
                      f"freeze={timings['freeze_seconds'] * 1e3:.1f}ms "
                      f"check={timings['check_seconds'] * 1e3:.1f}ms "
                      f"merge={timings['merge_seconds'] * 1e3:.1f}ms")
        elif args.fast:
            from repro.core.fastcheck import check_trace_fast

            result = check_trace_fast(
                recorder.trace, names=name_capture.names,
                progress=progress,
            )
            detector = result  # duck-typed: .report / .races / .witnesses
            if args.metrics:
                timings = result.timings
                print(f"fast check: "
                      f"encode={timings['encode_seconds'] * 1e3:.1f}ms "
                      f"structure={timings['structure_seconds'] * 1e3:.1f}ms "
                      f"access={timings['access_seconds'] * 1e3:.1f}ms "
                      f"({result.events_per_second:,.0f} access-checks/s)")

        print(detector.report.summary())

        witnesses = getattr(detector, "witnesses", None) or []
        if explain and witnesses:
            from repro.obs import render_witness_text

            print("\nrace witnesses (non-ordering certificates):")
            for witness in witnesses:
                print()
                print(render_witness_text(witness))

        verify_failed = False
        if args.verify_witness and graph_builder is not None:
            from repro.obs import confirm_witness

            closure = ReachabilityClosure(graph_builder.graph)
            for witness in witnesses:
                ok = confirm_witness(
                    witness, graph_builder.graph, closure=closure
                )
                status = "confirmed" if ok else "REFUTED"
                print(f"witness {witness.witness_id}: {status} against "
                      "brute-force closure")
                verify_failed = verify_failed or not ok

        write_artifacts()

        if verify_failed:
            print("error: witness verification failed — detector and "
                  "brute-force closure disagree", file=sys.stderr)
            return 2

        if args.witness and graph_builder is not None and detector.report.has_races:
            closure = ReachabilityClosure(graph_builder.graph)
            print("\nschedule witnesses:")
            for loc in sorted(detector.report.racy_locations, key=repr):
                pair = demonstrate_nondeterminism(
                    graph_builder.graph, loc, closure
                )
                if pair is None:
                    print(f"  {loc!r}: racy but observably masked "
                          "(racy-yet-determinate)")
                else:
                    diffs = pair[0].differs_from(pair[1])
                    print(f"  {loc!r}: {diffs[0]}")

        return 1 if detector.report.has_races else 0
    finally:
        if telemetry is not None:
            telemetry.stop()


if __name__ == "__main__":
    raise SystemExit(main())
