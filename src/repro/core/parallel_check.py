"""Sharded parallel race checking over a frozen DTRG snapshot.

Two-phase factoring of the paper's detector (the same split C-RACER uses
for futures and DePa uses with compact labels): the DTRG is built only
from *structure* events, while the per-location shadow checks are mutually
independent once the reachability structure is known.  Given a recorded
trace (:class:`~repro.core.events.Trace` or any event iterable):

1. **Build** (sequential, one streaming pass): structure events drive a
   real :class:`~repro.core.reachability.DynamicTaskReachabilityGraph`
   while every read/write is stamped with the *mutation epoch* at its
   stream position and bucketed by location hash.  The finished graph is
   frozen into a :class:`~repro.core.snapshot.DTRGSnapshot` (flat
   ``array('q')`` columns) plus a :class:`StructureLog` — the
   epoch-ordered list of set merges and non-tree-edge insertions.
2. **Fan-out**: buckets are bin-packed into ``jobs`` size-balanced shards
   and dispatched via :mod:`multiprocessing` (``fork``: workers inherit
   the payload through a module global; ``spawn``: the payload is pickled
   once per worker into the pool initializer).  Each worker replays its
   shard's accesses in global stream order through the **existing**
   :class:`~repro.core.shadow.ShadowMemory` algorithms, answering
   ``PRECEDE`` from an :class:`_EpochDTRG` — a union-find replica advanced
   lazily to each access's recorded epoch, which makes every verdict
   bit-identical to the online detector's (a final-state-only snapshot
   would *miss* races masked by later end-finish merges).
3. **Merge** (deterministic): per-shard races carry their global event
   sequence number and intra-access report index; the merge sorts by that
   pair — exactly sequential detection order — re-dedups (a no-op across
   shards: the dedupe key includes the location and each location lives in
   one shard), and sums counters.

Counter invariants (pinned by the golden/property tests):

* ``precede_queries``, ``mutation_epoch``, ``shadow_fast_hits``,
  ``precede_calls_saved``, ``#AvgReaders`` and the structural counters are
  bit-identical to the sequential replay at **every** job count — the
  per-cell check sequences are identical, only their interleaving differs,
  and none of those counters is interleaving-sensitive.
* The PRECEDE verdict *cache* is interleaving-sensitive (hits depend on
  query order across locations), so workers run cache-less and the
  ``cache_*`` columns report 0 — the same value at every job count.
* ``RaceReport.summary()`` is byte-identical to ``--jobs 1``.

Witness certificates (``--explain``) are not produced in parallel mode;
site *attribution* is — recorded event sites ride along into each shard
and surface on the merged races.
"""

from __future__ import annotations

import heapq
import pickle
import time
import zlib
from array import array
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.core.events import (
    OP_FINISH_END,
    OP_FINISH_START,
    OP_GET,
    OP_TASK_CREATE,
    OP_TASK_END,
    RUN_ACCESS,
    EncodedTrace,
    Event,
    FinishEndEvent,
    FinishStartEvent,
    GetEvent,
    ReadEvent,
    TaskCreateEvent,
    TaskEndEvent,
    WriteEvent,
)
from repro.core.races import AccessKind, Race, RaceReport
from repro.core.reachability import DynamicTaskReachabilityGraph
from repro.core.shadow import ShadowMemory
from repro.core.snapshot import DTRGSnapshot

__all__ = [
    "StructureLog",
    "ParallelCheckResult",
    "check_trace_parallel",
]

_OP_MERGE = 0
_OP_NT = 1

#: Micro-buckets per job: fine-grained hashing then greedy bin-packing
#: keeps shards size-balanced even when a few locations dominate.
_BUCKETS_PER_JOB = 8

#: Row layout of a bucket's flat ``array('q')``: (seq, epoch, kind, task,
#: loc_id) — kind 0 = read, 1 = write.
_ROW = 5

_KIND = {
    "read-write": AccessKind.READ_WRITE,
    "write-write": AccessKind.WRITE_WRITE,
    "write-read": AccessKind.WRITE_READ,
}


class StructureLog:
    """Epoch-stamped DTRG mutation history, in flat ``array('q')`` form.

    One entry per set-changing mutation, in execution order: ``(epoch, op,
    x, y)`` where ``op`` is ``_OP_MERGE`` (``merge(x, y)`` — ancestor,
    descendant) or ``_OP_NT`` (non-tree edge ``y -> x``'s set).  ``epoch``
    is the graph's :attr:`mutation_epoch` *after* the mutation, so a
    replica that has applied every entry with ``epoch <= e`` holds exactly
    the set state the online detector saw at epoch ``e`` (``add_task`` /
    ``on_terminate`` bump the epoch too but change no set state the
    replica doesn't already pre-materialize).  Entries initially hold task
    *keys*; :meth:`reindex` maps them to dense snapshot indices.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries = array("q")

    def append(self, epoch: int, op: int, x, y) -> None:
        self.entries.extend((epoch, op, x, y))

    def __len__(self) -> int:
        return len(self.entries) // 4

    def reindex(self, index: Dict[Hashable, int]) -> None:
        entries = self.entries
        for i in range(0, len(entries), 4):
            entries[i + 2] = index[entries[i + 2]]
            entries[i + 3] = index[entries[i + 3]]


class _RecordingDTRG(DynamicTaskReachabilityGraph):
    """Live DTRG that journals set-changing mutations into a
    :class:`StructureLog`.

    Detection is delta-based so only *effective* mutations are recorded:
    ``record_join`` on an already-merged pair journals nothing (the live
    graph bumps nothing either), and the tree-join path journals through
    the ``merge`` override it dispatches to.  The build phase runs
    cache-less — no queries are issued during construction, so the cache
    would only cost memory.
    """

    def __init__(self) -> None:
        super().__init__(cache_precede=False)
        self.log = StructureLog()
        #: Task key -> LSA task key at spawn time (the singleton set's
        #: initial ``lsa``), ``-1`` sentinel handled at reindex by the
        #: caller keeping -1 rows out.
        self.lsa_spawn: Dict[Hashable, Hashable] = {}

    def add_task(self, parent_key, child_key, *, is_future, name=None):
        node = super().add_task(
            parent_key, child_key, is_future=is_future, name=name
        )
        lsa = self._sets.get_metadata(node).lsa
        if lsa is not None:
            self.lsa_spawn[child_key] = lsa.key
        return node

    def record_join(self, consumer_key, producer_key) -> None:
        before = self.num_non_tree_edges
        super().record_join(consumer_key, producer_key)
        if self.num_non_tree_edges != before:
            self.log.append(
                self.mutation_epoch, _OP_NT, consumer_key, producer_key
            )

    def merge(self, ancestor_key, descendant_key) -> None:
        before = self.num_tree_merges
        super().merge(ancestor_key, descendant_key)
        if self.num_tree_merges != before:
            self.log.append(
                self.mutation_epoch, _OP_MERGE, ancestor_key, descendant_key
            )


class _EpochDTRG:
    """Per-worker DTRG replica that answers ``PRECEDE`` *as of* any epoch.

    All tasks are pre-materialized as singleton sets (tasks not yet
    spawned at a query's epoch are never referenced by it); set state is
    advanced lazily by applying :class:`StructureLog` entries in order up
    to the query epoch.  The query itself is a faithful port of
    Algorithm 10's default strategy — same level-0 checks, preorder prune,
    memoized VISIT search and LSA chain, same counter discipline — over
    arrays instead of node objects, so verdicts *and* ``num_visits`` match
    the online graph's cache-less run exactly.
    """

    __slots__ = (
        "uf", "label_pre", "label_post", "max_pre", "lsa", "nt",
        "log", "log_pos", "log_len",
        "_stamp", "_qid", "num_precede_queries", "num_visits",
    )

    def __init__(self, snapshot: DTRGSnapshot, log: StructureLog,
                 lsa_spawn: Sequence[int]) -> None:
        n = len(snapshot)
        self.uf = list(range(n))
        # Every singleton set starts labeled with its own task interval;
        # posts are final values, which answer ancestor queries identically
        # to the temporaries the online run compared (labels.py invariant).
        self.label_pre = snapshot.pre
        self.label_post = array("q", snapshot.post)
        self.max_pre = array("q", snapshot.pre)
        self.lsa = array("q", lsa_spawn)
        self.nt: List[Optional[list]] = [None] * n
        self.log = log.entries
        self.log_pos = 0
        self.log_len = len(log.entries)
        self._stamp = array("q", bytes(8 * n))
        self._qid = 0
        self.num_precede_queries = 0
        self.num_visits = 0

    # -- union-find with path halving (mirrors DisjointSets.find) ------- #
    def find(self, x: int) -> int:
        uf = self.uf
        p = uf[x]
        while p != x:
            g = uf[p]
            uf[x] = g
            x = g
            p = uf[x]
        return x

    def advance(self, epoch: int) -> None:
        """Apply journaled mutations with entry epoch <= ``epoch``."""
        log, pos, end = self.log, self.log_pos, self.log_len
        while pos < end and log[pos] <= epoch:
            op = log[pos + 1]
            x = log[pos + 2]
            y = log[pos + 3]
            rx = self.find(x)
            if op == _OP_MERGE:
                # Algorithm 7: union keeping the ancestor side's metadata
                # (label/lsa already live at rx), nt lists concatenated in
                # the ancestor-then-descendant order the live graph uses.
                ry = self.find(y)
                nt_y = self.nt[ry]
                if nt_y:
                    nt_x = self.nt[rx]
                    if nt_x is None:
                        self.nt[rx] = list(nt_y)
                    else:
                        nt_x.extend(nt_y)
                if self.max_pre[ry] > self.max_pre[rx]:
                    self.max_pre[rx] = self.max_pre[ry]
                self.uf[ry] = rx
            else:
                nt_x = self.nt[rx]
                if nt_x is None:
                    self.nt[rx] = [y]
                else:
                    nt_x.append(y)
            pos += 4
        self.log_pos = pos

    # -- Algorithm 10 (default strategy, cache-less) -------------------- #
    def precede(self, ia: int, ib: int) -> bool:
        self.num_precede_queries += 1
        if ia == ib:
            return True
        ra = self.find(ia)
        rb = self.find(ib)
        if ra == rb:
            return True
        la_pre = self.label_pre[ra]
        la_post = self.label_post[ra]
        if la_pre <= self.label_pre[rb] and self.label_post[rb] <= la_post:
            return True
        if la_pre > self.max_pre[rb]:
            return False
        if not self.nt[rb] and self.lsa[rb] < 0:
            return False
        self._qid += 1
        qid = self._qid
        self._stamp[rb] = qid
        self.num_visits += 1
        return self._explore(ra, la_pre, la_post, rb, qid)

    def _visit(
        self, ra: int, la_pre: int, la_post: int, b_idx: int, qid: int
    ) -> bool:
        rb = self.find(b_idx)
        if rb == ra:
            return True
        if la_pre <= self.label_pre[rb] and self.label_post[rb] <= la_post:
            return True
        if la_pre > self.max_pre[rb]:
            return False
        stamp = self._stamp
        if stamp[rb] == qid:
            return False
        stamp[rb] = qid
        self.num_visits += 1
        return self._explore(ra, la_pre, la_post, rb, qid)

    def _explore(
        self, ra: int, la_pre: int, la_post: int, rb: int, qid: int
    ) -> bool:
        visit = self._visit
        nt_b = self.nt[rb]
        if nt_b:
            for pred in nt_b:
                if visit(ra, la_pre, la_post, pred, qid):
                    return True
        stamp, lsa = self._stamp, self.lsa
        anc = lsa[rb]
        while anc >= 0:
            r = self.find(anc)
            if stamp[r] != qid:
                stamp[r] = qid
                self.num_visits += 1
                nt_r = self.nt[r]
                if nt_r:
                    for pred in nt_r:
                        if visit(ra, la_pre, la_post, pred, qid):
                            return True
            anc = lsa[r]
        return False


# ---------------------------------------------------------------------- #
# Phase 1: streaming build                                               #
# ---------------------------------------------------------------------- #
class _Scope:
    __slots__ = ("owner", "joins")

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self.joins: List[int] = []


class _BuildResult:
    """Everything the streaming pass produced (parent-process only)."""

    __slots__ = (
        "dtrg", "log", "covered", "names", "locs", "buckets",
        "bucket_sites", "num_events", "num_access_events",
        "num_structure_events", "final_epoch",
    )


def _build_phase(events: Iterable[Event], num_buckets: int,
                 names: Optional[Dict[int, str]]) -> _BuildResult:
    """One streaming pass: structure -> recording DTRG, accesses ->
    epoch-stamped per-bucket rows.  Mirrors ``replay_trace``'s implicit
    bracket (main task 0, root finish 0, closing merges + terminate) so
    epochs line up with the sequential replay exactly."""
    dtrg = _RecordingDTRG()
    default_name = "task#{}".format
    future_name = "future#{}".format
    task_names: Dict[int, str] = dict(names) if names else {}
    covered: Dict[int, bool] = {0: False}
    dtrg.add_root(0, name=task_names.get(0, default_name(0)))
    scopes: Dict[int, _Scope] = {0: _Scope(0)}

    locs: List[Hashable] = []
    loc_ids: Dict[Hashable, int] = {}
    loc_bucket = array("q")
    # Rows accumulate in plain Python lists — one list.__iadd__ per event —
    # and are bulk-converted to array('q') once at the end.  A per-event
    # array.extend costs ~4x a list extend (buffer-protocol negotiation per
    # call), which dominated the build phase on access-heavy traces.
    buckets: List[list] = [[] for _ in range(num_buckets)]
    bucket_sites: List[Optional[list]] = [None] * num_buckets

    seq = 0
    n_access = 0
    n_structure = 0
    crc32 = zlib.crc32
    for event in events:
        tp = type(event)
        if tp is ReadEvent or tp is WriteEvent:
            loc = event.loc
            loc_id = loc_ids.get(loc)
            if loc_id is None:
                loc_id = len(locs)
                loc_ids[loc] = loc_id
                locs.append(loc)
                loc_bucket.append(
                    crc32(repr(loc).encode("utf-8", "replace")) % num_buckets
                )
            b = loc_bucket[loc_id]
            bucket = buckets[b]
            bucket += (
                seq, dtrg.mutation_epoch,
                0 if tp is ReadEvent else 1,
                event.task, loc_id,
            )
            site = getattr(event, "site", None)
            sites = bucket_sites[b]
            if sites is not None:
                sites.append(site)
            elif site is not None:
                # Lazily backfill: site retention costs nothing on
                # provenance-free traces.
                sites = [None] * (len(bucket) // _ROW - 1)
                sites.append(site)
                bucket_sites[b] = sites
            n_access += 1
        elif tp is TaskCreateEvent:
            child = event.child
            covered[child] = event.is_future or covered[event.parent]
            if child not in task_names:
                task_names[child] = (
                    future_name(child) if event.is_future
                    else default_name(child)
                )
            dtrg.add_task(
                event.parent, child,
                is_future=event.is_future, name=task_names[child],
            )
            if event.ief >= 0:
                scopes[event.ief].joins.append(child)
            n_structure += 1
        elif tp is TaskEndEvent:
            dtrg.on_terminate(event.task)
            n_structure += 1
        elif tp is GetEvent:
            dtrg.record_join(event.consumer, event.producer)
            n_structure += 1
        elif tp is FinishStartEvent:
            scopes[event.fid] = _Scope(event.owner)
            n_structure += 1
        elif tp is FinishEndEvent:
            scope = scopes[event.fid]
            for tid in scope.joins:
                dtrg.merge(scope.owner, tid)
            n_structure += 1
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown event {event!r}")
        seq += 1
    # Implicit closing bracket: root finish end, then main terminates.
    root = scopes[0]
    for tid in root.joins:
        dtrg.merge(0, tid)
    dtrg.on_terminate(0)
    if 0 not in task_names:
        task_names[0] = default_name(0)

    result = _BuildResult()
    result.dtrg = dtrg
    result.log = dtrg.log
    result.covered = covered
    result.names = task_names
    result.locs = locs
    result.buckets = [array("q", rows) for rows in buckets]
    result.bucket_sites = bucket_sites
    result.num_events = seq
    result.num_access_events = n_access
    result.num_structure_events = n_structure
    result.final_epoch = dtrg.mutation_epoch
    return result


def _build_phase_encoded(enc: EncodedTrace, num_buckets: int,
                         names: Optional[Dict[int, str]]) -> _BuildResult:
    """The :func:`_build_phase` streaming pass over an already-lowered
    :class:`~repro.core.events.EncodedTrace` — no event objects are
    reconstructed (ROADMAP item 5's leftover: the sharded checker used to
    require re-decoding an encoded trace back into slotted events first).

    Access runs walk the flat 3-wide ``array('q')`` rows directly and
    structure runs dispatch the small op tuples.  Bucket rows store task
    *keys* (``task_keys[idx]``), exactly like the event path, so the
    post-freeze dense remap and everything downstream is shared code —
    which is what keeps the byte-identical-at-any-jobs contract intact
    (pinned against the event path by the jobs {1,2,4} property sweep).
    """
    dtrg = _RecordingDTRG()
    default_name = "task#{}".format
    future_name = "future#{}".format
    task_names: Dict[int, str] = dict(names) if names else {}
    task_keys = enc.task_keys
    covered: Dict[int, bool] = {task_keys[0]: False}
    dtrg.add_root(task_keys[0], name=task_names.get(
        task_keys[0], default_name(task_keys[0])))
    scopes: Dict[int, _Scope] = {0: _Scope(task_keys[0])}

    # Location ids are the encoder's first-occurrence interning order —
    # the same order the event path assigns — so bucket hashes line up.
    locs: List[Hashable] = list(enc.locs)
    crc32 = zlib.crc32
    loc_bucket = array("q", (
        crc32(repr(loc).encode("utf-8", "replace")) % num_buckets
        for loc in locs
    ))
    buckets: List[list] = [[] for _ in range(num_buckets)]
    bucket_sites: List[Optional[list]] = [None] * num_buckets

    access = enc.access
    structure = enc.structure
    access_sites = enc.access_sites
    runs = enc.runs
    seq = 0
    a = 0          # global access-row ordinal (indexes access_sites)
    s = 0          # structure-tuple cursor
    created = 1    # next dense index OP_TASK_CREATE mints
    for r in range(0, len(runs), 2):
        count = runs[r + 1]
        if runs[r] == RUN_ACCESS:
            j = a * 3
            for _ in range(count):
                loc_id = access[j + 2]
                b = loc_bucket[loc_id]
                bucket = buckets[b]
                bucket += (
                    seq, dtrg.mutation_epoch,
                    access[j],                  # is_write == row kind
                    task_keys[access[j + 1]],   # store the task *key*
                    loc_id,
                )
                site = (
                    access_sites[a] if access_sites is not None else None
                )
                sites = bucket_sites[b]
                if sites is not None:
                    sites.append(site)
                elif site is not None:
                    sites = [None] * (len(bucket) // _ROW - 1)
                    sites.append(site)
                    bucket_sites[b] = sites
                a += 1
                j += 3
                seq += 1
        else:
            for op in structure[s:s + count]:
                code = op[0]
                if code == OP_TASK_CREATE:
                    child = task_keys[created]
                    created += 1
                    parent = task_keys[op[1]]
                    isf = bool(op[2])
                    covered[child] = isf or covered[parent]
                    if child not in task_names:
                        task_names[child] = (
                            future_name(child) if isf
                            else default_name(child)
                        )
                    dtrg.add_task(
                        parent, child,
                        is_future=isf, name=task_names[child],
                    )
                    if op[3] >= 0:
                        scopes[op[3]].joins.append(child)
                elif code == OP_TASK_END:
                    dtrg.on_terminate(task_keys[op[1]])
                elif code == OP_GET:
                    dtrg.record_join(task_keys[op[1]], task_keys[op[2]])
                elif code == OP_FINISH_START:
                    scopes[op[1]] = _Scope(task_keys[op[2]])
                elif code == OP_FINISH_END:
                    scope = scopes[op[1]]
                    for tid in scope.joins:
                        dtrg.merge(scope.owner, tid)
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown structure op {op!r}")
                seq += 1
            s += count
    # Implicit closing bracket, exactly as the event path.
    root = scopes[0]
    for tid in root.joins:
        dtrg.merge(task_keys[0], tid)
    dtrg.on_terminate(task_keys[0])
    if task_keys[0] not in task_names:
        task_names[task_keys[0]] = default_name(task_keys[0])

    result = _BuildResult()
    result.dtrg = dtrg
    result.log = dtrg.log
    result.covered = covered
    result.names = task_names
    result.locs = locs
    result.buckets = [array("q", rows) for rows in buckets]
    result.bucket_sites = bucket_sites
    result.num_events = seq
    result.num_access_events = enc.num_access_events
    result.num_structure_events = enc.num_structure_events
    result.final_epoch = dtrg.mutation_epoch
    return result


# ---------------------------------------------------------------------- #
# Phase 2: sharding + workers                                            #
# ---------------------------------------------------------------------- #
def _pack_shards(buckets: List[array], jobs: int) -> List[List[int]]:
    """Greedy largest-first bin-packing of bucket row counts into ``jobs``
    shards; deterministic (stable sort, heap tie-break on shard id)."""
    order = sorted(
        (i for i in range(len(buckets)) if len(buckets[i])),
        key=lambda i: (-len(buckets[i]), i),
    )
    heap = [(0, k) for k in range(jobs)]
    shards: List[List[int]] = [[] for _ in range(jobs)]
    for i in order:
        load, k = heapq.heappop(heap)
        shards[k].append(i)
        heapq.heappush(heap, (load + len(buckets[i]), k))
    return shards


def _bucket_rows(bucket: array, sites: Optional[list]):
    if sites is None:
        for j in range(0, len(bucket), _ROW):
            yield (bucket[j], bucket[j + 1], bucket[j + 2],
                   bucket[j + 3], bucket[j + 4], None)
    else:
        for r, j in enumerate(range(0, len(bucket), _ROW)):
            yield (bucket[j], bucket[j + 1], bucket[j + 2],
                   bucket[j + 3], bucket[j + 4],
                   sites[r] if r < len(sites) else None)


class _WorkerPayload:
    """Static data every worker needs, shipped once (inherited on fork,
    pickled once per worker on spawn)."""

    __slots__ = ("snapshot", "log", "lsa_spawn", "covered", "locs",
                 "shard_buckets", "shard_sites")

    def __init__(self, snapshot, log, lsa_spawn, covered, locs,
                 shard_buckets, shard_sites) -> None:
        self.snapshot = snapshot
        self.log = log
        self.lsa_spawn = lsa_spawn
        self.covered = covered
        self.locs = locs
        self.shard_buckets = shard_buckets
        self.shard_sites = shard_sites


def _run_shard(payload: _WorkerPayload, shard_id: int) -> dict:
    """Check one shard: replay its accesses in global stream order through
    the existing shadow-memory algorithms against the epoch replica."""
    start = time.perf_counter()
    replica = _EpochDTRG(payload.snapshot, payload.log, payload.lsa_spawn)
    covered = payload.covered
    locs = payload.locs

    state = {"epoch": 0, "seq": 0, "site": None, "intra": 0}
    races: List[tuple] = []
    seen_pairs = set()
    # Cell-site retention mirroring shadow.attach_provenance (site strings
    # instead of flight-recorder ids): populated after each check so races
    # see the *previous* access's site.
    read_sites: Dict[int, Dict[int, Optional[str]]] = {}
    write_sites: Dict[int, tuple] = {}

    def report(kind: str, prev: int, cur: int, loc) -> None:
        loc_id = state["loc_id"]
        a, b = (prev, cur) if prev <= cur else (cur, prev)
        key = (loc_id, a, b, kind)
        if key in seen_pairs:
            return
        seen_pairs.add(key)
        if kind == "read-write":
            prev_site = read_sites.get(loc_id, {}).get(prev)
        else:
            ws = write_sites.get(loc_id)
            prev_site = ws[1] if ws is not None and ws[0] == prev else None
        races.append((
            state["seq"], state["intra"], kind, prev, cur, loc_id,
            prev_site, state["site"],
        ))
        state["intra"] += 1

    shadow = ShadowMemory(
        precede=replica.precede,
        is_future=covered.__getitem__,
        report=report,
        epoch=lambda: state["epoch"],
    )
    sm_read = shadow.read
    sm_write = shadow.write
    advance = replica.advance

    streams = [
        _bucket_rows(bucket, sites)
        for bucket, sites in zip(
            payload.shard_buckets[shard_id], payload.shard_sites[shard_id]
        )
    ]
    rows = streams[0] if len(streams) == 1 else heapq.merge(*streams)
    n_rows = 0
    retain_sites = any(
        s is not None for s in payload.shard_sites[shard_id]
    )
    for seq, epoch, kind, task, loc_id, site in rows:
        advance(epoch)
        state["epoch"] = epoch
        state["seq"] = seq
        state["site"] = site
        state["loc_id"] = loc_id
        state["intra"] = 0
        if kind == 0:
            sm_read(task, loc_id)
            if retain_sites:
                sites_for = read_sites.get(loc_id)
                if sites_for is None:
                    read_sites[loc_id] = sites_for = {}
                sites_for[task] = site
        else:
            sm_write(task, loc_id)
            if retain_sites:
                write_sites[loc_id] = (task, site)
        n_rows += 1

    return {
        "shard": shard_id,
        "events": n_rows,
        "races": races,
        "seconds": time.perf_counter() - start,
        "counters": {
            "precede_queries": replica.num_precede_queries,
            "num_visits": replica.num_visits,
            "num_accesses": shadow.num_accesses,
            "total_readers_seen": shadow.total_readers_seen,
            "fast_read_hits": shadow.num_fast_read_hits,
            "fast_write_hits": shadow.num_fast_write_hits,
            "precede_calls_saved": shadow.num_precede_calls_saved,
            "num_locations": shadow.num_locations,
        },
    }


# Module-global payload slot for multiprocessing workers.  With the fork
# start method the parent sets it before creating the pool and children
# inherit it; with spawn the pool initializer unpickles it once per worker.
_SHARED_PAYLOAD: Optional[_WorkerPayload] = None


def _pool_init(blob: Optional[bytes]) -> None:
    global _SHARED_PAYLOAD
    if blob is not None:
        _SHARED_PAYLOAD = pickle.loads(blob)


def _run_shard_pooled(shard_id: int) -> dict:
    return _run_shard(_SHARED_PAYLOAD, shard_id)


# ---------------------------------------------------------------------- #
# Phase 3: deterministic merge + result                                  #
# ---------------------------------------------------------------------- #
class ParallelCheckResult:
    """Outcome of a sharded check, duck-typed like the sequential detector
    where the harness/CLI consume it (``report``, ``races``,
    ``racy_locations``, ``perf_stats``, ``avg_readers``)."""

    def __init__(self) -> None:
        self.report = RaceReport(dedupe=True)
        self.jobs = 0
        self.backend = "inline"
        self.snapshot: Optional[DTRGSnapshot] = None
        self.num_tasks = 0
        self.num_events = 0
        self.num_access_events = 0
        self.num_structure_events = 0
        self.num_locations = 0
        self.num_visits = 0
        self.num_non_tree_edges = 0
        self.num_tree_merges = 0
        self.mutation_epoch = 0
        self.num_precede_queries = 0
        self.shadow_fast_hits = 0
        self.precede_calls_saved = 0
        self.num_accesses = 0
        self.total_readers_seen = 0
        self.shards: List[dict] = []
        self.timings: Dict[str, float] = {}
        self.witnesses: List = []

    @property
    def races(self):
        return self.report.races

    @property
    def racy_locations(self):
        return self.report.racy_locations

    @property
    def avg_readers(self) -> float:
        if not self.num_accesses:
            return 0.0
        return self.total_readers_seen / self.num_accesses

    @property
    def perf_stats(self) -> dict:
        """Same keys as ``DeterminacyRaceDetector.perf_stats``.  The
        ``cache_*`` columns are 0 by construction (workers run cache-less
        so the columns are job-count-invariant); everything else is
        bit-identical to the sequential replay."""
        return {
            "precede_queries": self.num_precede_queries,
            "mutation_epoch": self.mutation_epoch,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_invalidations": 0,
            "cache_hit_rate": 0.0,
            "shadow_fast_hits": self.shadow_fast_hits,
            "precede_calls_saved": self.precede_calls_saved,
        }

    def summary(self) -> str:
        return self.report.summary()


def _resolve_backend(backend: Optional[str], jobs: int) -> str:
    if backend is not None:
        if backend not in ("inline", "fork", "spawn"):
            raise ValueError(f"unknown backend {backend!r}")
        return backend
    if jobs <= 1:
        return "inline"
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def check_trace_parallel(
    trace: EncodedTrace | Iterable[Event],
    *,
    jobs: int = 1,
    backend: Optional[str] = None,
    names: Optional[Dict[int, str]] = None,
    obs=None,
    progress=None,
) -> ParallelCheckResult:
    """Two-phase sharded race check of a recorded event stream.

    Parameters
    ----------
    trace:
        A :class:`~repro.core.events.Trace`, any iterable of events
        (generators welcome — the build phase is a single streaming
        pass), or an :class:`~repro.core.events.EncodedTrace`, whose
        batched rows the build phase consumes directly without
        reconstructing event objects.
    jobs:
        Number of shards/workers.  ``1`` runs the same two-phase pipeline
        in-process; results are bit-identical at every value.
    backend:
        ``None`` (auto: ``fork`` where available, else ``spawn``),
        ``"inline"`` (all shards in-process, no multiprocessing — what the
        property sweeps use), ``"fork"`` or ``"spawn"``.
    names:
        Optional tid -> display-name map (e.g. captured from a live run);
        defaults to the replay convention ``task#<tid>`` / ``future#<tid>``.
    obs:
        Optional :class:`repro.obs.Observability`; records freeze/fan-out/
        merge stage timings, shard balance metrics and per-shard spans.
        Disabled/None costs nothing.
    progress:
        Optional :class:`repro.obs.live.ProgressCounter`.  Bumped per
        phase and per shard — for the ``inline`` backend after each
        shard completes; for pooled (``fork``/``spawn``) backends the
        workers run in other processes, so progress jumps once when
        ``pool.map`` returns (documented coarseness, not a bug).
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    backend = _resolve_backend(backend, jobs)
    obs = obs if obs is not None and getattr(obs, "enabled", False) else None
    t0 = time.perf_counter()

    num_buckets = max(jobs * _BUCKETS_PER_JOB, 1)
    if progress is not None:
        progress.set_phase("build")
        if isinstance(trace, EncodedTrace):
            progress.set_total(2 * len(trace))  # build pass + check pass
    if isinstance(trace, EncodedTrace):
        build = _build_phase_encoded(trace, num_buckets, names)
    else:
        build = _build_phase(trace, num_buckets, names)
    t_build = time.perf_counter()
    if progress is not None:
        # Exact total now that the build pass counted the stream: one
        # unit per event in the build pass + one per access event in the
        # check pass (structure events are not replayed by shards).
        progress.set_total(build.num_events + build.num_access_events)
        progress.add(build.num_events)
        progress.set_phase("freeze")

    snapshot = DTRGSnapshot.freeze(build.dtrg)
    index = snapshot.index
    build.log.reindex(index)
    n = len(snapshot)
    lsa_spawn = array("q", [-1]) * n
    for key, lsa_key in build.dtrg.lsa_spawn.items():
        lsa_spawn[index[key]] = index[lsa_key]
    covered = bytearray(n)
    for key, flag in build.covered.items():
        if flag:
            covered[index[key]] = 1
    # Access rows were recorded with task *keys*; remap to dense indices.
    # (Runtime/replay tids are already dense creation-order ints, so the
    # remap is usually the identity and skipped; synthetic traces may
    # skip ids.)
    if any(key != i for i, key in enumerate(snapshot.keys)):
        for bucket in build.buckets:
            for j in range(3, len(bucket), _ROW):
                bucket[j] = index[bucket[j]]
    t_freeze = time.perf_counter()

    shard_assign = _pack_shards(build.buckets, jobs)
    shard_buckets = [
        [build.buckets[i] for i in assigned] for assigned in shard_assign
    ]
    shard_sites = [
        [build.bucket_sites[i] for i in assigned] for assigned in shard_assign
    ]
    payload = _WorkerPayload(
        snapshot, build.log, lsa_spawn, covered, build.locs,
        shard_buckets, shard_sites,
    )
    active = [k for k in range(jobs) if shard_buckets[k]]

    if obs is not None:
        sizes = [
            sum(len(b) // _ROW for b in shard_buckets[k]) for k in range(jobs)
        ]
        obs.on_parallel_plan(jobs, backend, sizes)

    if progress is not None:
        progress.set_phase("check")
    shard_results: List[dict] = []
    if not active:
        pass
    elif backend == "inline" or len(active) == 1:
        for k in active:
            shard_results.append(_run_shard(payload, k))
            if progress is not None:
                progress.add(shard_results[-1]["events"])
    else:
        import multiprocessing

        ctx = multiprocessing.get_context(backend)
        global _SHARED_PAYLOAD
        if backend == "fork":
            _SHARED_PAYLOAD = payload
            initargs = (None,)
        else:
            initargs = (pickle.dumps(payload, pickle.HIGHEST_PROTOCOL),)
        try:
            with ctx.Pool(
                processes=min(jobs, len(active)),
                initializer=_pool_init,
                initargs=initargs,
            ) as pool:
                shard_results = pool.map(_run_shard_pooled, active)
        finally:
            _SHARED_PAYLOAD = None
        if progress is not None:
            # Pooled workers live in other processes; the shared counter
            # can only jump when the whole fan-out returns.
            progress.add(sum(s["events"] for s in shard_results))
    t_check = time.perf_counter()
    if progress is not None:
        progress.set_phase("merge")

    result = ParallelCheckResult()
    result.jobs = jobs
    result.backend = backend
    result.snapshot = snapshot
    result.num_tasks = n
    result.num_events = build.num_events
    result.num_access_events = build.num_access_events
    result.num_structure_events = build.num_structure_events
    result.mutation_epoch = build.final_epoch
    result.num_non_tree_edges = build.dtrg.num_non_tree_edges
    result.num_tree_merges = build.dtrg.num_tree_merges

    all_races: List[tuple] = []
    for shard in shard_results:
        all_races.extend(shard["races"])
        c = shard["counters"]
        result.num_precede_queries += c["precede_queries"]
        result.num_visits += c["num_visits"]
        result.num_accesses += c["num_accesses"]
        result.total_readers_seen += c["total_readers_seen"]
        result.shadow_fast_hits += (
            c["fast_read_hits"] + c["fast_write_hits"]
        )
        result.precede_calls_saved += c["precede_calls_saved"]
        result.num_locations += c["num_locations"]
        result.shards.append({
            "shard": shard["shard"],
            "events": shard["events"],
            "races": len(shard["races"]),
            "seconds": shard["seconds"],
        })
    # Deterministic merge: (seq, intra-access index) is exactly sequential
    # detection order; per-shard dedupe is already global because the
    # dedupe key includes the location and each location lives in exactly
    # one shard.
    all_races.sort(key=lambda r: (r[0], r[1]))
    keys = snapshot.keys
    locs = build.locs
    names_map = build.names
    for _seq, _i, kind, prev, cur, loc_id, prev_site, cur_site in all_races:
        prev_key, cur_key = keys[prev], keys[cur]
        result.report.add(Race(
            loc=locs[loc_id],
            kind=_KIND[kind],
            prev_task=prev_key,
            current_task=cur_key,
            prev_name=names_map.get(prev_key, ""),
            current_name=names_map.get(cur_key, ""),
            prev_site=prev_site,
            current_site=cur_site,
        ))
    t_merge = time.perf_counter()
    if progress is not None:
        progress.add_races(len(all_races))
        progress.set_phase("done")

    result.timings = {
        "build_seconds": t_build - t0,
        "freeze_seconds": t_freeze - t_build,
        "check_seconds": t_check - t_freeze,
        "merge_seconds": t_merge - t_check,
        "total_seconds": t_merge - t0,
        "max_shard_seconds": max(
            (s["seconds"] for s in result.shards), default=0.0
        ),
    }
    if obs is not None:
        obs.on_parallel_stages(result.timings, result.shards)
    return result
