"""The determinacy race detector — Algorithms 1-10 assembled.

:class:`DeterminacyRaceDetector` is an
:class:`~repro.core.events.ExecutionObserver` that plugs into the serial
depth-first :class:`~repro.runtime.runtime.Runtime` (or into a replayed
:class:`~repro.core.events.Trace`) and implements the paper's Section 4.3
machinery:

======================  ==========================================
Paper                    Here
======================  ==========================================
Algorithm 1 (init)       :meth:`on_init`
Algorithm 2 (spawn)      :meth:`on_task_create`
Algorithm 3 (end)        :meth:`on_task_end`
Algorithm 4 (get)        :meth:`on_get`
Algorithm 5 (start fin)  :meth:`on_finish_start` (bookkeeping only)
Algorithm 6 (end fin)    :meth:`on_finish_end`
Algorithm 7 (merge)      :meth:`DynamicTaskReachabilityGraph.merge`
Algorithm 8 (write)      :meth:`on_write` → :meth:`ShadowMemory.write`
Algorithm 9 (read)       :meth:`on_read` → :meth:`ShadowMemory.read`
Algorithm 10 (precede)   :meth:`precede` → DTRG
======================  ==========================================

Theorem 2: run against a serial depth-first execution, the detector reports a
race on a location iff some pair of logically-parallel conflicting accesses
to that location exists in the computation graph — property-tested against
the brute-force graph oracle in ``tests/properties/``.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.backend import resolve_engine
from repro.core.events import ExecutionObserver
from repro.core.races import AccessKind, Race, RaceReport, ReportPolicy
from repro.core.reachability import DynamicTaskReachabilityGraph
from repro.core.shadow import ShadowMemory
from repro.runtime.errors import RaceError

__all__ = ["DeterminacyRaceDetector"]

_KIND = {
    "read-write": AccessKind.READ_WRITE,
    "write-write": AccessKind.WRITE_WRITE,
    "write-read": AccessKind.WRITE_READ,
}


class DeterminacyRaceDetector(ExecutionObserver):
    """On-the-fly determinacy race detector for async/finish/future programs.

    Parameters
    ----------
    policy:
        :attr:`ReportPolicy.COLLECT` (default) records every race and lets
        the program finish; :attr:`ReportPolicy.RAISE` raises
        :class:`~repro.runtime.errors.RaceError` at the first one.
    dedupe:
        Collapse repeated reports of the same (location, pair, kind).
    use_lsa / memoize_visit / use_intervals:
        Ablation switches forwarded to the DTRG (see
        :mod:`repro.core.reachability`).
    cache_precede:
        Enable the epoch-versioned PRECEDE cache
        (:mod:`repro.core.precede_cache`) and the shadow memory's
        epoch-memoized same-task read fast path.  Default on; switch off
        to measure the paper's plain algorithms (``bench_ablations.py``,
        ``bench_precede_cache.py``).
    engine:
        The PRECEDE backend (see :mod:`repro.core.backend`):
        ``"object"``/``"dtrg"`` (the paper's DTRG, default),
        ``"array"`` (flat-array DTRG, §13), ``"depa"`` (order-maintenance
        labels for the fork-join fragment — declines future ``get``
        edges with :class:`~repro.runtime.errors.UnsupportedConstructError`),
        or ``"vc"`` (future-aware vector clocks).  All engines produce
        bit-identical race lists on the fragments they support.
    obs:
        Optional :class:`repro.obs.Observability` sink.  When enabled it
        is attached to the DTRG (PRECEDE latency/frontier/cache-outcome
        instrumentation, mutation instants) and the shadow memory
        (per-access reader-population instrumentation), and races are
        emitted as trace instants.  ``None`` (default) or a disabled
        object leaves every hot path on the uninstrumented code —
        structural counters and verdicts are bit-identical either way
        (pinned by ``tests/integration/test_obs_integration.py``).
    provenance:
        Optional :class:`repro.obs.provenance.RaceProvenance` (the same
        object attached to the runtime / replay).  When enabled, each
        reported race carries the two accesses' call-site labels and a
        machine-checkable :class:`~repro.obs.provenance.RaceWitness`
        (non-ordering certificate built by
        :meth:`DynamicTaskReachabilityGraph.explain_precede`) is appended
        to :attr:`witnesses`.  ``None`` (default) changes nothing: the
        certificate builder bumps no DTRG counters and touches no cache,
        so structural counters stay bit-identical.

    Attributes
    ----------
    report:
        The accumulated :class:`~repro.core.races.RaceReport`.
    dtrg:
        The underlying reachability structure (exposed for tests,
        Table 1-style dumps and the metrics harness).
    shadow:
        The :class:`~repro.core.shadow.ShadowMemory`.
    witnesses:
        :class:`~repro.obs.provenance.RaceWitness` list, parallel to the
        deduplicated races (empty unless ``provenance`` is attached).
    """

    def __init__(
        self,
        policy: ReportPolicy | str = ReportPolicy.COLLECT,
        *,
        dedupe: bool = True,
        use_lsa: bool = True,
        memoize_visit: bool = True,
        use_intervals: bool = True,
        cache_precede: bool = True,
        engine: str = "object",
        obs=None,
        provenance=None,
    ) -> None:
        if isinstance(policy, str):
            policy = ReportPolicy(policy)
        self.policy = policy
        engine = resolve_engine(engine)
        self.engine = engine
        self.report = RaceReport(dedupe=dedupe)
        self.obs = (
            obs if obs is not None and getattr(obs, "enabled", False) else None
        )
        self.witnesses: list = []
        if provenance is not None and getattr(provenance, "enabled", False):
            # Local import: the provenance module is outside the detector's
            # hot-path dependency set and only needed when attached.
            from repro.obs.provenance import RaceWitness

            self.provenance = provenance
            self._witness_cls = RaceWitness
        else:
            self.provenance = None
            self._witness_cls = None
        if engine != "object":
            # Alternative PRECEDE backends (repro.core.backend): the flat
            # array DTRG, the DePa order-maintenance labels and the
            # future-aware vector clocks implement only the paper's
            # default query strategy (the Algorithm 10 ablation switches
            # are object-graph concepts), and none carry the
            # observability hooks or the explain_precede witness builder.
            # cache_precede still gates the shadow memory's epoch memo
            # below; for engine='array' that keeps shadow_fast_hits /
            # precede_calls_saved bit-identical to the default detector
            # (depa/vc have their own epoch schedules — see
            # docs/ALGORITHM.md §14).
            if not (use_lsa and memoize_visit and use_intervals):
                raise ValueError(
                    f"engine={engine!r} implements the default query "
                    "strategy only; ablation switches require "
                    "engine='object'"
                )
            if self.obs is not None or self.provenance is not None:
                raise ValueError(
                    f"engine={engine!r} does not support observability or "
                    "provenance attachments; use engine='object'"
                )
            if engine == "array":
                from repro.core.array_dtrg import ArrayDTRG

                self.dtrg = ArrayDTRG()
            elif engine == "depa":
                from repro.core.depa import DePaBackend

                self.dtrg = DePaBackend()
            else:
                from repro.core.vc_backend import VectorClockBackend

                self.dtrg = VectorClockBackend()
        else:
            self.dtrg = DynamicTaskReachabilityGraph(
                use_lsa=use_lsa,
                memoize_visit=memoize_visit,
                use_intervals=use_intervals,
                cache_precede=cache_precede,
            )
        dtrg = self.dtrg
        # Attach before binding dtrg.precede below, so the shadow memory
        # queries through the traced entry point when tracing is on.
        if self.obs is not None:
            dtrg.attach_observability(self.obs)
        self.shadow = ShadowMemory(
            precede=dtrg.precede,
            is_future=self._is_future_covered,
            report=self._report_race,
            # cache_precede gates the whole caching layer: with it off the
            # shadow memory runs the paper's plain Algorithms 8-9 (modulo
            # the unconditional structural identities).
            epoch=(lambda: dtrg.mutation_epoch) if cache_precede else None,
        )
        if self.obs is not None:
            self.shadow.attach_observability(self.obs)
        if self.provenance is not None:
            # After attach_observability so the provenance wrapper composes
            # around the traced twins when both layers are on.
            self.shadow.attach_provenance(self.provenance)
        self._names: dict[int, str] = {}
        #: tid -> "future-covered": the task is a future or has a future
        #: among its spawn-tree ancestors.  The shadow memory's reader-set
        #: policy needs this (not plain ``IsFuture``) to stay sound: a
        #: future-covered reader's end can be ordered with a later access
        #: through a ``get`` edge, which breaks the Lemma 4
        #: pseudo-transitivity the single-async-representative rests on
        #: (see ``ShadowMemory`` and DESIGN.md).
        self._future_covered: dict[int, bool] = {}

    # ------------------------------------------------------------------ #
    # Observer hooks                                                     #
    # ------------------------------------------------------------------ #
    def on_init(self, main) -> None:
        """Algorithm 1: register the main task with label [0, MAXINT]."""
        self._names[main.tid] = main.name
        self._future_covered[main.tid] = False
        self.dtrg.add_root(main.tid, name=main.name)

    def on_task_create(self, parent, child) -> None:
        """Algorithm 2: label the child, initialize its singleton set and
        lowest significant ancestor."""
        self._names[child.tid] = child.name
        self._future_covered[child.tid] = (
            child.is_future or self._future_covered[parent.tid]
        )
        self.dtrg.add_task(
            parent.tid, child.tid, is_future=child.is_future, name=child.name
        )

    def on_task_end(self, task) -> None:
        """Algorithm 3: finalize the task's postorder value."""
        self.dtrg.on_terminate(task.tid)

    def on_get(self, consumer, producer) -> None:
        """Algorithm 4: tree join (merge) or non-tree join (record edge)."""
        self.dtrg.record_join(consumer.tid, producer.tid)

    def on_finish_start(self, scope) -> None:
        """Algorithm 5: scope bookkeeping lives in the runtime; backends
        that maintain finish-scoped labels (DePa) observe the boundary.
        The DTRG engines implement ``begin_finish`` as an epoch-free
        no-op, so the object/array counter contract is untouched."""
        self.dtrg.begin_finish(scope.owner.tid)

    def on_finish_end(self, scope) -> None:
        """Algorithm 6: merge every task whose IEF is this scope into the
        owner task's set, then close the scope for label backends."""
        owner = scope.owner.tid
        for task in scope.joins:
            self.dtrg.merge(owner, task.tid)
        self.dtrg.end_finish(owner)

    def on_read(self, task, loc: Hashable) -> None:
        """Algorithm 9 via the shadow memory."""
        self.shadow.read(task.tid, loc)

    def on_write(self, task, loc: Hashable) -> None:
        """Algorithm 8 via the shadow memory."""
        self.shadow.write(task.tid, loc)

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #
    def precede(self, a_tid: int, b_tid: int) -> bool:
        """Expose ``PRECEDE`` for tests and external tooling."""
        return self.dtrg.precede(a_tid, b_tid)

    @property
    def races(self):
        """Shortcut for ``report.races``."""
        return self.report.races

    @property
    def racy_locations(self):
        """Shortcut for ``report.racy_locations``."""
        return self.report.racy_locations

    @property
    def perf_stats(self) -> dict:
        """Caching/fast-path counters for the harness report and benchmarks.

        Keys are stable (the harness renders them next to ``#AvgReaders``):
        ``precede_queries``, ``mutation_epoch``, ``cache_hits``,
        ``cache_misses``, ``cache_invalidations``, ``cache_hit_rate``,
        ``shadow_fast_hits``, ``precede_calls_saved``.
        """
        cache = self.dtrg.cache
        return {
            "precede_queries": self.dtrg.num_precede_queries,
            "mutation_epoch": self.dtrg.mutation_epoch,
            "cache_hits": cache.hits if cache else 0,
            "cache_misses": cache.misses if cache else 0,
            "cache_invalidations": cache.invalidations if cache else 0,
            "cache_hit_rate": cache.hit_rate if cache else 0.0,
            "shadow_fast_hits": self.shadow.num_fast_path_hits,
            "precede_calls_saved": self.shadow.num_precede_calls_saved,
        }

    # ------------------------------------------------------------------ #
    # Internals                                                          #
    # ------------------------------------------------------------------ #
    def _is_future_covered(self, tid: int) -> bool:
        return self._future_covered[tid]

    def _report_race(
        self, kind: str, prev: int, cur: int, loc: Hashable
    ) -> None:
        prov = self.provenance
        prev_site = current_site = witness_id = None
        if prov is not None:
            prev_site = prov.site_label(self.shadow.stored_site(kind, prev, loc))
            current_site = prov.site_label(prov.current_site)
            witness_id = f"w{len(self.witnesses)}"
        race = Race(
            loc=loc,
            kind=_KIND[kind],
            prev_task=prev,
            current_task=cur,
            prev_name=self._names.get(prev, ""),
            current_name=self._names.get(cur, ""),
            prev_site=prev_site,
            current_site=current_site,
            witness_id=witness_id,
        )
        added = self.report.add(race)
        if added and prov is not None:
            # Build the non-ordering certificate for PRECEDE(prev, cur) =
            # false.  explain_precede is read-only (no counters, no cache),
            # so witness construction never perturbs detection state.
            self.witnesses.append(self._witness_cls(
                witness_id=witness_id,
                loc=loc,
                kind=kind,
                prev_task=prev,
                current_task=cur,
                prev_name=self._names.get(prev, ""),
                current_name=self._names.get(cur, ""),
                prev_site=prev_site,
                current_site=current_site,
                certificate=self.dtrg.explain_precede(prev, cur),
            ))
        if added and self.obs is not None:
            self.obs.on_race(kind, prev, cur, loc)
        if added and self.policy is ReportPolicy.RAISE:
            raise RaceError(race)
