"""Single-pass fast race checking over an encoded trace.

``check_trace_fast`` is the single-thread hot path the ROADMAP's
"~1M events/s" item calls for: one streaming pass over an
:class:`~repro.core.events.EncodedTrace` in which *structure* events
mutate a live :class:`~repro.core.array_dtrg.ArrayDTRG` in place and
*access* events run Algorithms 8-9 over compact integer-indexed shadow
state — no per-event Python objects, no replay stand-ins, no epoch
journal (the graph itself is always at the current epoch, unlike the
sharded checker which must rewind).

The shadow state is the structure-of-arrays form of
:class:`~repro.core.shadow.ShadowMemory`'s cells, indexed by interned
location id:

* ``writers[loc]`` — last writing task index (``-1`` none),
* ``readers[loc]`` — retained parallel-reader index list (``None`` until
  first read; at most one plain-async member plus every future-covered
  member, exactly the Lemma 4 policy),
* ``fast_reader[loc]`` / ``fast_epoch[loc]`` — the epoch-memoized
  same-task read fast path.

Equivalence contract (same as the sharded checker's, pinned by
``tests/properties/test_array_equivalence.py`` and the golden tests):
race list, detection order, ``RaceReport.summary()``, ``#AvgReaders`` and
the invariant ``DetectorPerf`` counters (``precede_queries``,
``mutation_epoch``, ``shadow_fast_hits``, ``precede_calls_saved``) are
bit-identical to the sequential replay detector; ``cache_*`` report 0
because the array engine runs cache-less (verdict-cache hit counts are
physical-root-identity-sensitive, see :mod:`repro.core.array_dtrg`).

The run-length segments produced by ``encode_trace`` do double duty:
dispatch is amortized over whole blocks (the access inner loop never
tests event *types*), and the per-phase wall-clock split the bench
surfaces (``structure_seconds`` vs ``access_seconds``) falls out of
timestamping block boundaries instead of single events.

Provenance sites recorded in the trace ride along: races carry the two
accesses' site labels exactly like the sharded checker's attribution
(witness *certificates* are sequential-replay-only, as before).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, List, Optional

from repro.core.array_dtrg import ArrayDTRG
from repro.core.events import (
    OP_FINISH_END,
    OP_FINISH_START,
    OP_GET,
    OP_TASK_CREATE,
    OP_TASK_END,
    RUN_ACCESS,
    EncodedTrace,
    Event,
    encode_trace,
)
from repro.core.races import AccessKind, Race, RaceReport

__all__ = ["FastCheckResult", "check_trace_fast"]

_KIND = {
    "read-write": AccessKind.READ_WRITE,
    "write-write": AccessKind.WRITE_WRITE,
    "write-read": AccessKind.WRITE_READ,
}


class FastCheckResult:
    """Outcome of a fast single-pass check, duck-typed like
    :class:`~repro.core.parallel_check.ParallelCheckResult` where the
    harness/CLI consume it (``report``, ``races``, ``racy_locations``,
    ``perf_stats``, ``avg_readers``, ``summary()``), plus the live
    :class:`ArrayDTRG` (``dtrg``) for freezing/introspection."""

    def __init__(self) -> None:
        self.report = RaceReport(dedupe=True)
        self.dtrg: Optional[ArrayDTRG] = None
        self.num_tasks = 0
        self.num_events = 0
        self.num_access_events = 0
        self.num_structure_events = 0
        self.num_locations = 0
        self.num_visits = 0
        self.num_non_tree_edges = 0
        self.num_tree_merges = 0
        self.mutation_epoch = 0
        self.num_precede_queries = 0
        self.shadow_fast_hits = 0
        self.precede_calls_saved = 0
        self.num_accesses = 0
        self.total_readers_seen = 0
        #: ``encode_seconds`` (trace lowering, 0.0 when given an already
        #: encoded trace), ``structure_seconds`` (DTRG mutation blocks),
        #: ``access_seconds`` (shadow check blocks), ``total_seconds``.
        self.timings: Dict[str, float] = {}

    @property
    def races(self):
        return self.report.races

    @property
    def racy_locations(self):
        return self.report.racy_locations

    @property
    def avg_readers(self) -> float:
        if not self.num_accesses:
            return 0.0
        return self.total_readers_seen / self.num_accesses

    @property
    def events_per_second(self) -> float:
        total = self.timings.get("total_seconds", 0.0)
        return self.num_events / total if total > 0 else 0.0

    @property
    def access_events_per_second(self) -> float:
        """Throughput of the access-check phase alone — the quantity the
        ISSUE 6 acceptance criterion tracks."""
        secs = self.timings.get("access_seconds", 0.0)
        return self.num_access_events / secs if secs > 0 else 0.0

    @property
    def perf_stats(self) -> dict:
        """Same keys as ``DeterminacyRaceDetector.perf_stats``; the
        ``cache_*`` columns are 0 by construction (cache-less engine)."""
        return {
            "precede_queries": self.num_precede_queries,
            "mutation_epoch": self.mutation_epoch,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_invalidations": 0,
            "cache_hit_rate": 0.0,
            "shadow_fast_hits": self.shadow_fast_hits,
            "precede_calls_saved": self.precede_calls_saved,
        }

    def summary(self) -> str:
        return self.report.summary()


def check_trace_fast(
    trace: "EncodedTrace | Iterable[Event]",
    *,
    names: Optional[Dict[int, str]] = None,
    progress=None,
) -> FastCheckResult:
    """Check a recorded trace in one pass (see module docstring).

    Parameters
    ----------
    trace:
        An :class:`EncodedTrace`, or a :class:`~repro.core.events.Trace` /
        event iterable (encoded on the fly; the encode time is reported
        separately in ``timings``).
    names:
        Optional tid -> display-name map; defaults to the replay
        convention ``task#<tid>`` / ``future#<tid>``.
    progress:
        Optional :class:`repro.obs.live.ProgressCounter`.  Bumped once
        per run-length *block* (never per event) so live telemetry costs
        nothing measurable on the hot path; ``None`` (default) keeps the
        function byte-identical to the untelemetered build.
    """
    t0 = perf_counter()
    if isinstance(trace, EncodedTrace):
        enc = trace
        t_enc = t0
    else:
        enc = encode_trace(trace)
        t_enc = perf_counter()

    task_keys = enc.task_keys
    n_tasks = len(task_keys)
    # Display names, replay convention; Race construction reads these.
    names_list: List[str] = []
    for i in range(n_tasks):
        key = task_keys[i]
        name = names.get(key) if names else None
        if name is None:
            name = (
                f"future#{key}" if enc.is_future[i] else f"task#{key}"
            )
        names_list.append(name)

    dtrg = ArrayDTRG()
    dtrg.add_root_idx(task_keys[0], names_list[0])
    add_task_idx = dtrg.add_task_idx
    on_terminate_idx = dtrg.on_terminate_idx
    record_join_idx = dtrg.record_join_idx
    merge_idx = dtrg.merge_idx
    precede = dtrg.precede_idx

    #: Future-covered flag per task index (future or spawn-descendant of
    #: one) — the strengthened ``IsFuture`` the reader policy needs.
    covered = bytearray(1)
    #: fid -> [owner_idx, join_idx_list] (root finish 0 owned by main).
    scopes: Dict[int, list] = {0: [0, []]}

    n_locs = enc.num_locations
    writers = [-1] * n_locs
    readers: List[Optional[list]] = [None] * n_locs
    fast_reader = [-1] * n_locs
    fast_epoch = [-1] * n_locs

    report = FastCheckResult()
    report.dtrg = dtrg
    add_race = report.report.add
    locs = enc.locs
    sites = enc.access_sites
    retain = sites is not None
    read_sites: Dict[int, Dict[int, Optional[str]]] = {}
    write_sites: Dict[int, tuple] = {}

    def _report(kind: str, prev: int, cur: int, lid: int, row: int) -> None:
        # Rare path: build the Race exactly as the sequential detector
        # would, with site attribution mirroring the sharded workers'.
        if kind == "read-write":
            prev_site = read_sites.get(lid, {}).get(prev)
        else:
            ws = write_sites.get(lid)
            prev_site = ws[1] if ws is not None and ws[0] == prev else None
        add_race(Race(
            loc=locs[lid],
            kind=_KIND[kind],
            prev_task=task_keys[prev],
            current_task=task_keys[cur],
            prev_name=names_list[prev],
            current_name=names_list[cur],
            prev_site=prev_site,
            current_site=sites[row] if retain else None,
        ))
        if progress is not None:
            progress.add_races(1)

    # Hot locals.
    acc = enc.access
    structure = enc.structure
    runs = enc.runs
    total_readers = 0
    fast_read = 0
    fast_write = 0
    saved = 0
    cur_epoch = 0  # mirrors dtrg.mutation_epoch between structure blocks
    structure_seconds = 0.0
    access_seconds = 0.0

    if progress is not None:
        progress.set_total(len(enc))

    j = 0   # next access row offset (in ints, rows are 3 wide)
    si = 0  # next structure tuple index
    for ri in range(0, len(runs), 2):
        n_run = runs[ri + 1]
        if progress is not None:
            progress.add(n_run)
        t_blk = perf_counter()
        if runs[ri] == RUN_ACCESS:
            end = j + 3 * n_run
            while j < end:
                is_write = acc[j]
                task = acc[j + 1]
                lid = acc[j + 2]
                j += 3
                rl = readers[lid]
                w = writers[lid]
                if is_write:
                    # ----------------- Algorithm 8: write ------------- #
                    if rl:
                        nr = len(rl)
                        total_readers += nr
                        fast_reader[lid] = -1
                        surviving = None
                        vw = -1  # writer's verdict if the writer also read
                        for i2 in range(nr):
                            x = rl[i2]
                            v = precede(x, task)
                            if x == w:
                                vw = 1 if v else 0
                            if v:
                                if surviving is None:
                                    surviving = rl[:i2]
                            else:
                                _report("read-write", x, task, lid,
                                        (j - 3) // 3)
                                if surviving is not None:
                                    surviving.append(x)
                        if surviving is not None:
                            readers[lid] = surviving
                        if w >= 0 and w != task:
                            if vw >= 0:
                                saved += 1
                                v = vw
                            else:
                                v = precede(w, task)
                            if not v:
                                _report("write-write", w, task, lid,
                                        (j - 3) // 3)
                        writers[lid] = task
                    elif w < 0 or w == task:
                        # Structural fast path: empty reader loop +
                        # skipped/reflexive writer check.
                        fast_write += 1
                        fast_reader[lid] = -1
                        writers[lid] = task
                    else:
                        fast_reader[lid] = -1
                        if not precede(w, task):
                            _report("write-write", w, task, lid,
                                    (j - 3) // 3)
                        writers[lid] = task
                    if retain:
                        write_sites[lid] = (task, sites[(j - 3) // 3])
                    continue
                # --------------------- Algorithm 9: read -------------- #
                if rl:
                    nr = len(rl)
                    total_readers += nr
                    if (w < 0 or w == task) and nr == 1 and rl[0] == task:
                        # Structural fast path: sole-self reader,
                        # reflexive retire-and-reappend.
                        fast_read += 1
                        saved += 1
                        if retain:
                            rs = read_sites.get(lid)
                            if rs is None:
                                read_sites[lid] = rs = {}
                            rs[task] = sites[(j - 3) // 3]
                        continue
                    if fast_reader[lid] == task and fast_epoch[lid] == cur_epoch:
                        # Epoch memo: pure replay of this task's last
                        # clean check against an unmutated DTRG.
                        fast_read += 1
                        saved += nr + (0 if w < 0 or w == task else 1)
                        if retain:
                            rs = read_sites.get(lid)
                            if rs is None:
                                read_sites[lid] = rs = {}
                            rs[task] = sites[(j - 3) // 3]
                        continue
                    update = False
                    tif = covered[task]
                    surviving = None
                    for i2 in range(nr):
                        x = rl[i2]
                        if precede(x, task):
                            update = True
                            if surviving is None:
                                surviving = rl[:i2]
                            continue
                        if tif or covered[x]:
                            update = True
                        if surviving is not None:
                            surviving.append(x)
                    if surviving is not None:
                        readers[lid] = rl = surviving
                elif w < 0 or w == task:
                    # Structural fast path: first reader, no writer check
                    # (deviation: always record the first reader).
                    fast_read += 1
                    if rl is None:
                        readers[lid] = [task]
                    else:
                        rl.append(task)
                    if retain:
                        rs = read_sites.get(lid)
                        if rs is None:
                            read_sites[lid] = rs = {}
                        rs[task] = sites[(j - 3) // 3]
                    continue
                else:
                    if fast_reader[lid] == task and fast_epoch[lid] == cur_epoch:
                        fast_read += 1
                        saved += 1  # the skipped writer check
                        if retain:
                            rs = read_sites.get(lid)
                            if rs is None:
                                read_sites[lid] = rs = {}
                            rs[task] = sites[(j - 3) // 3]
                        continue
                    update = True  # deviation: record the first reader
                raced = False
                if w >= 0 and w != task and not precede(w, task):
                    _report("write-read", w, task, lid, (j - 3) // 3)
                    raced = True
                if update and (rl is None or task not in rl):
                    if rl is None:
                        readers[lid] = [task]
                    else:
                        rl.append(task)
                if raced:
                    fast_reader[lid] = -1
                else:
                    fast_reader[lid] = task
                    fast_epoch[lid] = cur_epoch
                if retain:
                    rs = read_sites.get(lid)
                    if rs is None:
                        read_sites[lid] = rs = {}
                    rs[task] = sites[(j - 3) // 3]
            access_seconds += perf_counter() - t_blk
        else:
            for t in structure[si:si + n_run]:
                op = t[0]
                if op == OP_GET:
                    record_join_idx(t[1], t[2])
                elif op == OP_TASK_CREATE:
                    parent = t[1]
                    child = len(dtrg.uf)
                    covered.append(1 if t[2] else covered[parent])
                    add_task_idx(parent, bool(t[2]),
                                 task_keys[child], names_list[child])
                    if t[3] >= 0:
                        scopes[t[3]][1].append(child)
                elif op == OP_TASK_END:
                    on_terminate_idx(t[1])
                elif op == OP_FINISH_START:
                    scopes[t[1]] = [t[2], []]
                else:  # OP_FINISH_END
                    owner, joins = scopes[t[1]]
                    for tid in joins:
                        merge_idx(owner, tid)
            si += n_run
            cur_epoch = dtrg.mutation_epoch
            structure_seconds += perf_counter() - t_blk

    # Implicit closing bracket: root finish end, then main terminates
    # (mirrors replay_trace / the sharded build phase).
    t_blk = perf_counter()
    owner, joins = scopes[0]
    for tid in joins:
        merge_idx(owner, tid)
    on_terminate_idx(0)
    structure_seconds += perf_counter() - t_blk

    t_done = perf_counter()
    report.num_tasks = n_tasks
    report.num_access_events = enc.num_access_events
    report.num_structure_events = enc.num_structure_events
    report.num_events = len(enc)
    report.num_locations = n_locs
    report.num_visits = dtrg.num_visits
    report.num_non_tree_edges = dtrg.num_non_tree_edges
    report.num_tree_merges = dtrg.num_tree_merges
    report.mutation_epoch = dtrg.mutation_epoch
    report.num_precede_queries = dtrg.num_precede_queries
    report.shadow_fast_hits = fast_read + fast_write
    report.precede_calls_saved = saved
    report.num_accesses = enc.num_access_events
    report.total_readers_seen = total_readers
    report.timings = {
        "encode_seconds": t_enc - t0,
        "structure_seconds": structure_seconds,
        "access_seconds": access_seconds,
        "total_seconds": t_done - t0,
    }
    return report
