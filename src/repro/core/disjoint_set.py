"""Disjoint-set (union-find) data structure used by the dynamic task
reachability graph.

The paper's Section 4.1 ("Disjoint set representation of tree joins") uses the
classic *fast disjoint-set* structure [CLRS ch. 21/22] with the three
operations ``MakeSet``, ``Union`` and ``FindSet``.  Any ``m`` operations on
``n`` sets take ``O(m * alpha(m, n))`` time, where ``alpha`` is the functional
inverse of Ackermann's function.

Two tasks are kept in the same set if and only if they are connected by
tree-join and continue edges in the computation graph; the set as a whole then
behaves, for reachability purposes, like the root-most task it contains.  To
support that, every *set* (not element) carries a metadata record — the
interval label, the incoming non-tree edges and the lowest significant
ancestor — stored on the set's representative and moved explicitly by
:meth:`DisjointSets.union`, which lets the caller decide which operand's
metadata survives (the paper's Algorithm 7 keeps the metadata of the
ancestor-side set).

The structure is deliberately generic: elements are opaque hashable objects
(task nodes in the detector, plain integers in unit tests).
"""

from __future__ import annotations

from typing import Any, Dict, Generic, Hashable, Iterator, Optional, TypeVar

__all__ = ["DisjointSets"]

E = TypeVar("E", bound=Hashable)


class _Entry:
    """Internal per-element record: union-find parent pointer and rank."""

    __slots__ = ("parent", "rank")

    def __init__(self) -> None:
        self.parent: Optional[Any] = None  # None -> self is a root
        self.rank: int = 0


class DisjointSets(Generic[E]):
    """A collection of disjoint sets with per-set metadata.

    Implements union by rank and path compression (via path halving, which
    keeps ``find`` iterative and allocation-free).  The amortized cost of any
    operation is ``O(alpha(n))``, matching the bound the paper's Theorem 1
    relies on.

    Metadata handling
    -----------------
    ``union(a, b)`` merges the set containing ``b`` into the set containing
    ``a`` *logically*: whichever element becomes the union-find root
    physically (rank decides), the resulting set's metadata is the metadata
    previously attached to ``a``'s set.  This mirrors the paper's Algorithm 7
    where the merged set keeps the label/lsa of the ancestor-side set
    ``S_A`` while the ``nt`` lists are combined by the caller.
    """

    def __init__(self) -> None:
        self._entries: Dict[E, _Entry] = {}
        self._metadata: Dict[E, Any] = {}  # keyed by current root only
        self._num_sets = 0
        self._num_unions = 0
        self._num_finds = 0

    # ------------------------------------------------------------------ #
    # Core operations                                                    #
    # ------------------------------------------------------------------ #
    def make_set(self, x: E, metadata: Any = None) -> E:
        """Create a new singleton set containing ``x``.

        Raises :class:`ValueError` if ``x`` is already present — each element
        may be added exactly once (each task is created exactly once).
        """
        if x in self._entries:
            raise ValueError(f"element {x!r} is already in a set")
        self._entries[x] = _Entry()
        if metadata is not None:
            self._metadata[x] = metadata
        self._num_sets += 1
        return x

    def find(self, x: E) -> E:
        """Return the representative of the set containing ``x``.

        Uses path halving: every node on the search path is re-pointed to its
        grandparent, giving the same amortized bound as full path compression
        without recursion.
        """
        self._num_finds += 1
        try:
            entry = self._entries[x]
        except KeyError:
            raise KeyError(f"element {x!r} is not in any set") from None
        while entry.parent is not None:
            parent_entry = self._entries[entry.parent]
            if parent_entry.parent is not None:
                # Path halving: skip a level.
                entry.parent = parent_entry.parent
            x = entry.parent
            entry = self._entries[x]
        return x

    def union(self, a: E, b: E) -> E:
        """Merge the set containing ``b`` into the set containing ``a``.

        Returns the representative of the merged set.  The merged set's
        metadata is the metadata that was attached to ``a``'s set; ``b``'s
        set metadata is discarded (the caller is expected to have combined
        whatever it needs beforehand, as Algorithm 7 does with the ``nt``
        lists).

        A no-op (returning the shared representative) if ``a`` and ``b`` are
        already in the same set.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        meta = self._metadata.pop(ra, None)
        self._metadata.pop(rb, None)
        ea, eb = self._entries[ra], self._entries[rb]
        if ea.rank < eb.rank:
            ra, rb = rb, ra
            ea, eb = eb, ea
        # ra is now the higher-rank root; rb hangs under it.
        eb.parent = ra
        if ea.rank == eb.rank:
            ea.rank += 1
        if meta is not None:
            self._metadata[ra] = meta
        self._num_sets -= 1
        self._num_unions += 1
        return ra

    def same_set(self, a: E, b: E) -> bool:
        """True iff ``a`` and ``b`` currently belong to the same set."""
        return self.find(a) == self.find(b)

    def root_and_metadata(self, x: E):
        """``(representative, metadata)`` in one find — the detector's
        hot-path accessor (a ``find`` + ``get_metadata`` pair would run the
        find twice)."""
        root = self.find(x)
        return root, self._metadata.get(root)

    # ------------------------------------------------------------------ #
    # Metadata                                                           #
    # ------------------------------------------------------------------ #
    def get_metadata(self, x: E) -> Any:
        """Return the metadata of the set containing ``x`` (or ``None``)."""
        return self._metadata.get(self.find(x))

    def set_metadata(self, x: E, metadata: Any) -> None:
        """Attach ``metadata`` to the set containing ``x``."""
        self._metadata[self.find(x)] = metadata

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #
    def __contains__(self, x: E) -> bool:
        return x in self._entries

    def __len__(self) -> int:
        """Number of elements (not sets)."""
        return len(self._entries)

    @property
    def num_sets(self) -> int:
        """Number of disjoint sets currently alive."""
        return self._num_sets

    @property
    def num_unions(self) -> int:
        """Total unions performed (operation counter for complexity tests)."""
        return self._num_unions

    @property
    def num_finds(self) -> int:
        """Total finds performed (operation counter for complexity tests)."""
        return self._num_finds

    def elements(self) -> Iterator[E]:
        """Iterate over every element ever added."""
        return iter(self._entries)

    def members(self, x: E) -> list:
        """Return all elements in the set containing ``x``.

        O(n) — intended for tests and debugging output (Table 1 style DTRG
        dumps), never used on the detector's hot path.
        """
        root = self.find(x)
        return [e for e in self._entries if self.find(e) == root]

    def as_partition(self) -> list:
        """Return the full partition as a list of lists (tests/debugging)."""
        groups: Dict[E, list] = {}
        for e in self._entries:
            groups.setdefault(self.find(e), []).append(e)
        return list(groups.values())
