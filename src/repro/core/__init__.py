"""Core race-detection machinery: the paper's primary contribution.

Exports the detector (Algorithms 1-10), the dynamic task reachability graph
(Section 4.1), shadow memory (Section 4.2), and race records.
"""

from repro.core.detector import DeterminacyRaceDetector
from repro.core.disjoint_set import DisjointSets
from repro.core.events import ExecutionObserver, Trace
from repro.core.exact import ExactDetector, ExactTaskReachability
from repro.core.labels import IntervalLabel, LabelAllocator
from repro.core.parallel_check import (
    ParallelCheckResult,
    StructureLog,
    check_trace_parallel,
)
from repro.core.precede_cache import PrecedeCache
from repro.core.races import AccessKind, Race, RaceReport, ReportPolicy
from repro.core.reachability import DynamicTaskReachabilityGraph
from repro.core.shadow import ShadowCell, ShadowMemory
from repro.core.snapshot import DTRGSnapshot

__all__ = [
    "DeterminacyRaceDetector",
    "ExactDetector",
    "ExactTaskReachability",
    "DisjointSets",
    "ExecutionObserver",
    "Trace",
    "IntervalLabel",
    "LabelAllocator",
    "AccessKind",
    "Race",
    "RaceReport",
    "ReportPolicy",
    "DynamicTaskReachabilityGraph",
    "DTRGSnapshot",
    "ParallelCheckResult",
    "StructureLog",
    "check_trace_parallel",
    "PrecedeCache",
    "ShadowCell",
    "ShadowMemory",
]
