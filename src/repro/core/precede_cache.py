"""Epoch-versioned memo table for ``PRECEDE`` queries.

The paper's own evaluation (Table 2) shows detector overhead is dominated
by the per-access ``PRECEDE`` checks issued from the shadow memory; in the
futures-heavy workloads each cold query pays a backward search over
non-tree join edges.  Related detectors (MultiBags+, DePa) win precisely by
amortizing this query.  :class:`PrecedeCache` does the same for the DTRG
without changing the algorithm: it memoizes the *expensive* verdicts — the
ones that survive the level-0 same-set / interval / preorder checks and
would otherwise trigger a backward search.

Soundness
---------
Entries are keyed by the pair of **current set representatives**
``(find(A), find(B))``, resolved at lookup time, so tree-join merges
collapse entries naturally: after a merge the union-find root of the merged
set either changes (old keys are simply never looked up again — a root that
loses root status never regains it) or absorbs the old set's metadata and
edges.  The verdict of ``PRECEDE(A, B)`` is a function of the two tasks'
*sets* only (Algorithm 10 consults ``A`` and ``B`` exclusively through
their set representatives and set metadata, and the algorithm is exact —
Lemma 6, property-tested in ``tests/properties/test_precede_exact.py``),
so set-level keying loses no precision.

*Positive entries are permanent.*  Happens-before in the DTRG is
**monotone**: construction only ever *adds* paths —

* ``add_task`` adds a node and a spawn edge,
* ``record_join`` adds a non-tree edge or merges two sets,
* ``merge`` unions two sets, keeping the union of their ``nt`` edge lists,
* ``on_terminate`` finalizes a postorder value, which changes interval
  *representations* but never the ancestor relation those intervals encode
  (containment ⇔ ancestry holds at every intermediate moment — see
  :mod:`repro.core.labels`).

No operation removes a node, an edge, or splits a set, hence the
happens-before relation the exact query decides can only grow: once
``PRECEDE(A, B)`` is true, it is true forever.  (Sketch: a positive verdict
witnesses a path from A's set to B's current step through tree joins,
non-tree edges and spawn-ancestor chains; every constituent edge survives
all four mutation kinds — merges union ``nt`` lists and only widen set
labels toward ancestors — so the witness survives too.)

*Negative entries carry the DTRG mutation epoch*, a counter bumped on every
graph mutation (the four operations above).  Within one epoch the graph is
frozen **and** the executing task cannot change (task switches require a
spawn, a termination or a join, each of which bumps the epoch), so
``PRECEDE`` is a pure function of its key: a same-epoch negative entry is
exact.  A stale-epoch negative entry is discarded and recomputed, because a
mutation may have added exactly the missing path.

Observability: :attr:`hits`, :attr:`misses`, :attr:`invalidations`
(stale negatives dropped) and :attr:`epoch` (mutation count at last
store) feed the harness report next to ``#AvgReaders``.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

__all__ = ["PrecedeCache"]


class PrecedeCache:
    """Memo table for expensive ``PRECEDE`` verdicts.

    Keys are ``(root_a, root_b)`` pairs of *current* union-find
    representatives (hashable by identity); the caller resolves them via
    ``find`` immediately before :meth:`lookup`/:meth:`store` and passes the
    current mutation epoch.
    """

    __slots__ = ("_positive", "_negative", "hits", "misses", "invalidations")

    def __init__(self) -> None:
        self._positive: Set[Tuple[object, object]] = set()
        self._negative: Dict[Tuple[object, object], int] = {}
        #: Lookups answered from the table.
        self.hits = 0
        #: Lookups that fell through to a real backward search.
        self.misses = 0
        #: Stale negative entries discarded on lookup.
        self.invalidations = 0

    # ------------------------------------------------------------------ #
    def lookup(self, root_a, root_b, epoch: int) -> Optional[bool]:
        """Cached verdict for ``(root_a, root_b)`` at ``epoch``, else None.

        Positive entries answer regardless of epoch (monotonicity);
        negative entries answer only if recorded in the current epoch and
        are dropped otherwise.
        """
        key = (root_a, root_b)
        if key in self._positive:
            self.hits += 1
            return True
        stored = self._negative.get(key)
        if stored is not None:
            if stored == epoch:
                self.hits += 1
                return False
            del self._negative[key]
            self.invalidations += 1
        self.misses += 1
        return None

    def store(self, root_a, root_b, verdict: bool, epoch: int) -> None:
        """Record a freshly computed verdict."""
        if verdict:
            self._positive.add((root_a, root_b))
        else:
            self._negative[(root_a, root_b)] = epoch

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #
    @property
    def num_positive(self) -> int:
        """Permanent positive entries currently stored."""
        return len(self._positive)

    @property
    def num_negative(self) -> int:
        """Negative entries currently stored (any epoch)."""
        return len(self._negative)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the table (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._positive.clear()
        self._negative.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PrecedeCache(+{len(self._positive)}, -{len(self._negative)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"stale={self.invalidations})"
        )
