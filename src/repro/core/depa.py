"""DePa-style dag-path order maintenance for the fork-join fragment.

Westrick, Fluet, Rainey & Acar ("DePa: Simple, Provably Efficient, and
Practical Order Maintenance for Task Parallelism", arXiv:2204.14168)
maintain, per task, a *dag path* — a compact encoding of the path from
the dag's root to the task's current vertex — such that two vertices are
ordered iff their paths compare prefix-wise.  Queries touch only the two
labels (no shared structure, no union-find), which is what makes the
scheme attractive as an alternative PRECEDE engine: ``precede`` is a
single label comparison, spawns are O(1) appends, and end-finish joins
are a pop.

This backend implements that idea for the **fork-join fragment** of our
model (``async``/``finish``, plus futures that are never ``get`` — such
futures join their IEF exactly like asyncs).  Labels are sequences of
``(position, branch)`` pairs:

- Every task owns a *spine* along which ``position`` counts its
  sequential steps: each spawn and each closed finish scope advances it.
- A spawn at position ``s`` hangs the child off pair ``(s, B)`` with a
  globally unique branch id ``B ≥ 1``; the parent's continuation
  proceeds at ``(s + 1, ·)``, which is how a child and the continuation
  compare as *parallel* (distinct branches, neither 0).
- ``finish`` pushes pair ``(s, 0)`` (branch 0 = "the spine itself") and
  restarts positions inside the scope; ``end_finish`` pops and resumes
  the spine at ``s + 1`` — so anything labelled inside the scope
  compares *before* everything at positions ``> s``.  That single pop
  is the entire join: no per-task merge work.
- A task's current vertex is ``base + (position, 0)``; terminating
  freezes that as the task's end label.

``precede(a, b)`` (with ``b`` the currently executing task — see
``repro.core.backend``) compares labels at the first differing pair
``(s1, b1)`` vs ``(s2, b2)``:

===============  ========================================================
``b1 == b2``      same spine: ordered by position, ``s1 < s2``
``b1 == 0``       ``a`` sits in a finish scope (or ended) at ``s1``;
                  ``b`` branched at ``s2``: ordered iff the scope closed
                  first, i.e. ``s1 <= s2`` (equality is unreachable —
                  a position hosts one spawn *or* one scope)
``b2 == 0``       ``a`` branched off a scope ``b`` is still inside —
                  ``a`` has not joined: parallel
both ``>= 1``     two un-joined branches of one spine: parallel (a
                  closed finish between them would have left a
                  ``(s, 0)`` pair separating the labels)
===============  ========================================================

For a still-running ``a`` the comparison uses ``a``'s immutable spawn
path, whose final pair carries ``a``'s unique branch id: it is a prefix
of ``b``'s label iff ``a`` is a spawn ancestor of ``b``, and under the
serial depth-first execution the live tasks are exactly the current
task's ancestor chain, every completed step of which precedes the
current step.

The fragment boundary is explicit: **future ``get`` edges are
declined.**  A ``get`` creates a non-tree join that no path-shaped
label can witness without auxiliary structure (that is precisely the
paper's motivation for the DTRG), so :meth:`record_join` raises
:class:`~repro.runtime.errors.UnsupportedConstructError` rather than
answer later queries wrongly.  The fuzzer counts that as a *refusal*
(like the restricted SP-bags family) and the property sweep in
``tests/properties/test_backend_equivalence.py`` pins the exact
boundary: declines iff the program executed a ``get``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.runtime.errors import UnsupportedConstructError

__all__ = ["DePaBackend"]

# A label is a flat tuple (s0, b0, s1, b1, ...) — flat to keep
# comparisons allocation-free tuple walks rather than nested-pair
# traversals.
_Label = Tuple[int, ...]


class DePaBackend:
    """Order-maintenance PRECEDE engine for async/finish programs.

    Implements the :class:`repro.core.backend.PrecedeBackend` protocol.
    ``cache`` is ``None`` (there is nothing to cache: a query *is* one
    label comparison); the invariant counters ``mutation_epoch`` and
    ``num_precede_queries`` follow the protocol's determinism contract.
    """

    __slots__ = (
        "_base",
        "_pos",
        "_fstack",
        "_end",
        "_spawn_path",
        "_alive",
        "_next_branch",
        "mutation_epoch",
        "num_precede_queries",
        "cache",
    )

    def __init__(self) -> None:
        #: key -> immutable label prefix (spawn path + open finish pairs).
        self._base: Dict[Hashable, _Label] = {}
        #: key -> current position on the task's innermost spine.
        self._pos: Dict[Hashable, int] = {}
        #: key -> stack of (base, position) saved at begin_finish.
        self._fstack: Dict[Hashable, List[Tuple[_Label, int]]] = {}
        #: key -> frozen end label (terminated tasks only).
        self._end: Dict[Hashable, _Label] = {}
        #: key -> spawn path: the child's base at creation, whose final
        #: pair carries the child's globally unique branch id.
        self._spawn_path: Dict[Hashable, _Label] = {}
        self._alive: Dict[Hashable, bool] = {}
        self.mutation_epoch = 0
        self.num_precede_queries = 0
        self.cache = None
        self._next_branch = 1

    # ------------------------------------------------------------------ #
    # Structural mutators                                                #
    # ------------------------------------------------------------------ #
    def add_root(self, key: Hashable, *, name: str = "") -> None:
        self._base[key] = ()
        self._pos[key] = 0
        self._fstack[key] = []
        self._spawn_path[key] = ()
        self._alive[key] = True
        self.mutation_epoch += 1

    def add_task(
        self,
        parent_key: Hashable,
        child_key: Hashable,
        *,
        is_future: bool = False,
        name: str = "",
    ) -> None:
        branch = self._next_branch
        self._next_branch = branch + 1
        path = self._base[parent_key] + (self._pos[parent_key], branch)
        self._pos[parent_key] += 1
        self._base[child_key] = path
        self._pos[child_key] = 0
        self._fstack[child_key] = []
        self._spawn_path[child_key] = path
        self._alive[child_key] = True
        self.mutation_epoch += 1

    def on_terminate(self, key: Hashable) -> None:
        # Finish scopes are well-nested within task bodies, so the base
        # has popped back to the spawn path by now.
        self._end[key] = self._base[key] + (self._pos[key], 0)
        self._alive[key] = False
        self.mutation_epoch += 1

    def begin_finish(self, owner_key: Hashable) -> None:
        base, pos = self._base[owner_key], self._pos[owner_key]
        self._fstack[owner_key].append((base, pos))
        self._base[owner_key] = base + (pos, 0)
        self._pos[owner_key] = 0
        self.mutation_epoch += 1

    def end_finish(self, owner_key: Hashable) -> None:
        base, saved_pos = self._fstack[owner_key].pop()
        self._base[owner_key] = base
        self._pos[owner_key] = saved_pos + 1
        self.mutation_epoch += 1

    def record_join(
        self, consumer_key: Hashable, producer_key: Hashable
    ) -> None:
        raise UnsupportedConstructError(
            "DePa order-maintenance labels cover the fork-join fragment "
            "only: a future get() is a non-tree join no dag-path label "
            "can witness (use engine='object'/'array'/'vc' for programs "
            "with gets)"
        )

    def merge(self, ancestor_key: Hashable, descendant_key: Hashable) -> None:
        # End-finish joins are realized by end_finish's pop: once the
        # owner resumes at position s+1, every label minted inside the
        # scope compares before it.  The per-task merge carries no
        # information the labels don't already have.
        self.mutation_epoch += 1

    # ------------------------------------------------------------------ #
    # Query                                                              #
    # ------------------------------------------------------------------ #
    def precede(self, a_key: Hashable, b_key: Hashable) -> bool:
        self.num_precede_queries += 1
        if a_key == b_key:
            return True
        lb = self._base[b_key] + (self._pos[b_key], 0)
        if self._alive[a_key]:
            # Live task: ancestor iff a's spawn path (ending in a's
            # unique branch id) prefixes b's current label.
            la = self._spawn_path[a_key]
            return lb[: len(la)] == la
        la = self._end[a_key]
        n = min(len(la), len(lb))
        for i in range(0, n, 2):
            s1, b1 = la[i], la[i + 1]
            s2, b2 = lb[i], lb[i + 1]
            if s1 == s2 and b1 == b2:
                continue
            if b1 == b2:
                return s1 < s2
            if b1 == 0:
                return s1 <= s2
            return False
        # One label prefixes the other — unreachable for well-nested
        # fork-join streams (a terminated task's terminal pair cannot
        # appear inside another label); answer by length defensively.
        return len(la) <= len(lb)

    # ------------------------------------------------------------------ #
    # Introspection (tests / docs)                                       #
    # ------------------------------------------------------------------ #
    def current_label(self, key: Hashable) -> _Label:
        """The task's current vertex label (frozen end label if ended)."""
        if not self._alive[key]:
            return self._end[key]
        return self._base[key] + (self._pos[key], 0)
