"""Online interval labeling of the dynamic spawn tree.

Section 4.1 ("Interval encoding of spawn tree"): every task is assigned a
``(pre, post)`` label from a depth-first traversal of the spawn tree, and task
``x`` is an ancestor of task ``y`` iff ``x.pre <= y.pre and y.post <= x.post``.

Because race detection is *on-the-fly*, the spawn tree unfolds while labels
are being handed out, so a task's true postorder number is unknown until the
task terminates.  The paper's scheme (Algorithms 1-3):

* ``pre``  — assigned at spawn from a counter ``dfid`` that increases over
  time.  Since the program executes in serial depth-first order, spawn order
  *is* preorder.
* ``post`` — assigned a *temporary* value at spawn, taken from a counter
  ``tmpid`` that starts at MAXINT and decreases; the temporary value is
  replaced by the final value (drawn from ``dfid`` again) when the task
  terminates.

The invariant that makes temporaries sound: at any moment, a live (not yet
terminated) task's temporary postorder is larger than every final postorder
ever assigned and larger than the temporaries of all its live descendants
(later spawns get strictly smaller temporaries).  Hence interval containment
answers ancestor queries correctly *at every intermediate moment*, which unit
and property tests verify directly.

The counters also serve double duty in the detector's :func:`visit` pruning:
the source of a non-tree join edge always has a smaller preorder than the
sink, so a search can stop as soon as every frontier preorder drops below the
query task's preorder.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

__all__ = ["IntervalLabel", "LabelAllocator", "MAXID"]

#: Stand-in for the paper's MAXINT.  Python ints are unbounded; any value
#: comfortably above the largest task count works.
MAXID = sys.maxsize


@dataclass
class IntervalLabel:
    """A mutable ``[pre, post]`` interval for one task (later one set).

    ``post`` holds a temporary value (near :data:`MAXID`) until the task
    terminates and :meth:`LabelAllocator.on_terminate` installs the final
    postorder number.
    """

    pre: int
    post: int
    final: bool = False  # True once the real postorder value is installed

    def contains(self, other: "IntervalLabel") -> bool:
        """True iff this interval subsumes ``other``.

        With labels drawn from :class:`LabelAllocator` this is exactly the
        ancestor-or-self relation on the spawn tree.
        """
        return self.pre <= other.pre and other.post <= self.post

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        post = str(self.post) if self.final else f"~{MAXID - self.post}"
        return f"[{self.pre},{post}]"


class LabelAllocator:
    """Hands out interval labels in serial-DFS spawn/termination order.

    Mirrors the counter discipline of Algorithms 1-3:

    * ``dfid``   — shared preorder/postorder counter, increases.
    * ``tmpid``  — temporary-postorder counter, starts at MAXINT, decreases
      on spawn and *increases back* on termination (Algorithm 3 line 3), so
      temporaries are recycled in stack order exactly as tasks nest.
    """

    def __init__(self) -> None:
        self._dfid = 0
        self._tmpid = MAXID

    def on_spawn(self) -> IntervalLabel:
        """Label a freshly spawned task (Algorithm 2 lines 2-5)."""
        label = IntervalLabel(pre=self._dfid, post=self._tmpid)
        self._dfid += 1
        self._tmpid -= 1
        return label

    def on_terminate(self, label: IntervalLabel) -> None:
        """Finalize a terminating task's postorder (Algorithm 3).

        Must be called in LIFO order with respect to :meth:`on_spawn` of
        still-live tasks — which serial depth-first execution guarantees.
        """
        if label.final:
            raise ValueError("label already finalized")
        label.post = self._dfid
        label.final = True
        self._dfid += 1
        self._tmpid += 1

    @property
    def live_count(self) -> int:
        """Number of spawned-but-not-terminated labels."""
        return MAXID - self._tmpid
