"""Shadow memory — Section 4.2 and Algorithms 8-9.

For every shared location ``M`` the detector keeps a shadow cell ``M_s``:

* ``w`` — the task that last wrote ``M`` (``None`` until the first write);
* ``r`` — tasks that read ``M`` in parallel since the last write.  The set
  holds **at most one async task** but arbitrarily many future tasks:
  Lemma 4's pseudo-transitivity (``s1 ∥ s2 ∧ s2 ∥ s3 ⇒ s1 ∥ s3``) holds only
  among async tasks, so a single async "leftmost parallel reader"
  representative suffices for async readers, while every parallel future
  reader must be retained.

The *average* shadow reader-set population is the paper's ``#AvgReaders``
column in Table 2 (0..1 for async-finish programs, unbounded with futures);
:class:`ShadowMemory` maintains the running average exactly as described:
"the average number of past parallel readers per location stored in the
shadow memory when a read/write access is performed on that location …
computed across all accesses and all locations."

Deviation from the printed pseudocode (see DESIGN.md §3): Algorithm 9 as
printed never records the *first* reader of a location (the ``update`` flag
stays false when ``r`` is empty), which would let a later parallel write slip
through undetected; we treat an empty reader set as "record the reader".
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple

__all__ = ["ShadowCell", "ShadowMemory"]


class ShadowCell:
    """Shadow state of one shared memory location."""

    __slots__ = ("writer", "readers")

    def __init__(self) -> None:
        self.writer: Optional[int] = None
        self.readers: List[int] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShadowCell(w={self.writer}, r={self.readers})"


class ShadowMemory:
    """All shadow cells plus the Algorithm 8/9 access checks.

    Parameters
    ----------
    precede:
        ``precede(prev_tid, cur_tid) -> bool`` — the DTRG query.
    is_future:
        ``is_future(tid) -> bool`` — the paper's ``IsFuture``.
    report:
        ``report(kind, prev_tid, cur_tid, loc)`` — race sink, called for each
        conflicting pair found.
    """

    def __init__(
        self,
        precede: Callable[[int, int], bool],
        is_future: Callable[[int], bool],
        report: Callable[[str, int, int, Hashable], None],
    ) -> None:
        self._cells: Dict[Hashable, ShadowCell] = {}
        self._precede = precede
        self._is_future = is_future
        self._report = report
        # #AvgReaders bookkeeping: readers stored at the moment of access,
        # summed over all accesses.
        self.num_accesses = 0
        self.total_readers_seen = 0

    # ------------------------------------------------------------------ #
    def cell(self, loc: Hashable) -> ShadowCell:
        """The shadow cell for ``loc``, created on first touch."""
        cell = self._cells.get(loc)
        if cell is None:
            cell = ShadowCell()
            self._cells[loc] = cell
        return cell

    def write(self, task: int, loc: Hashable) -> None:
        """Algorithm 8 — write check.

        Every stored reader and the stored writer must precede the writing
        task; offenders are reported.  Readers that do precede are retired
        (the new write supersedes them); the writer shadow becomes the
        current task.
        """
        cell = self.cell(loc)
        precede = self._precede
        self.num_accesses += 1
        readers = cell.readers
        self.total_readers_seen += len(readers)
        if readers:
            # Lazily copy: the common case retires or keeps everything
            # without rebuilding the list.
            surviving: Optional[List[int]] = None
            for i, x in enumerate(readers):
                if precede(x, task):
                    if surviving is None:
                        surviving = readers[:i]
                    continue  # retired: happens-before the write
                self._report("read-write", x, task, loc)
                if surviving is not None:
                    surviving.append(x)  # the paper keeps racy readers
            if surviving is not None:
                cell.readers = surviving
        w = cell.writer
        if w is not None and w != task and not precede(w, task):
            self._report("write-write", w, task, loc)
        cell.writer = task

    def read(self, task: int, loc: Hashable) -> None:
        """Algorithm 9 — read check.

        The stored writer must precede the reading task.  The reader set is
        maintained so that it always contains every past parallel *future*
        reader plus one representative async reader (Lemma 4 justifies the
        single-async policy).
        """
        cell = self.cell(loc)
        precede = self._precede
        self.num_accesses += 1
        readers = cell.readers
        self.total_readers_seen += len(readers)
        update = not readers  # deviation: always record the first reader
        if readers:
            task_is_future = self._is_future(task)
            surviving: Optional[List[int]] = None
            for i, x in enumerate(readers):
                if precede(x, task):
                    update = True  # x is superseded by this reader
                    if surviving is None:
                        surviving = readers[:i]
                    continue
                if task_is_future or self._is_future(x):
                    update = True  # pseudo-transitivity unavailable: keep both
                if surviving is not None:
                    surviving.append(x)
            if surviving is not None:
                cell.readers = surviving
        w = cell.writer
        if w is not None and w != task and not precede(w, task):
            self._report("write-read", w, task, loc)
        if update and task not in cell.readers:
            cell.readers.append(task)

    # ------------------------------------------------------------------ #
    # Metrics / introspection                                            #
    # ------------------------------------------------------------------ #
    @property
    def avg_readers(self) -> float:
        """Paper's ``#AvgReaders``: mean stored-reader population observed
        at access time, over all accesses."""
        if self.num_accesses == 0:
            return 0.0
        return self.total_readers_seen / self.num_accesses

    @property
    def num_locations(self) -> int:
        """Number of distinct shared locations touched."""
        return len(self._cells)

    def state(self, loc: Hashable) -> Tuple[Optional[int], List[int]]:
        """``(writer, readers)`` of ``loc``'s cell — for tests."""
        cell = self._cells.get(loc)
        if cell is None:
            return None, []
        return cell.writer, list(cell.readers)
