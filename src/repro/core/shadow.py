"""Shadow memory — Section 4.2 and Algorithms 8-9.

For every shared location ``M`` the detector keeps a shadow cell ``M_s``:

* ``w`` — the task that last wrote ``M`` (``None`` until the first write);
* ``r`` — tasks that read ``M`` in parallel since the last write.  The set
  holds **at most one plain async task** but arbitrarily many
  *future-covered* tasks: Lemma 4's pseudo-transitivity
  (``s1 ∥ s2 ∧ s2 ∥ s3 ⇒ s1 ∥ s3``) holds only among tasks whose ends
  cannot be awaited through a ``get`` edge, so a single "leftmost parallel
  reader" representative suffices for those, while every parallel
  future-covered reader must be retained.

  *Future-covered* means the task is a future **or is a spawn-tree
  descendant of one**: a read inside a finish in a future's body is
  summarized by the future's end, so a later ``get`` orders it with the
  consumer while a parallel plain-async reader stays unordered — dropping
  that reader would silently miss the race (found by differential fuzzing
  under fully scoped handle flow; regression
  ``tests/corpus/dtrg_future_covered_reader.json``).  The ``is_future``
  callback below must therefore answer True for every future-covered
  task, not just for future tasks.

The *average* shadow reader-set population is the paper's ``#AvgReaders``
column in Table 2 (0..1 for async-finish programs, unbounded with futures);
:class:`ShadowMemory` maintains the running average exactly as described:
"the average number of past parallel readers per location stored in the
shadow memory when a read/write access is performed on that location …
computed across all accesses and all locations."

Deviation from the printed pseudocode (see DESIGN.md §3): Algorithm 9 as
printed never records the *first* reader of a location (the ``update`` flag
stays false when ``r`` is empty), which would let a later parallel write slip
through undetected; we treat an empty reader set as "record the reader".

Fast paths (perf layer; ``docs/ALGORITHM.md`` §"Precede caching")
-----------------------------------------------------------------
Access-dominated workloads repeat accesses by the same task on the same
cell; the checks below skip the ``PRECEDE`` loops when the outcome is
forced, while keeping the ``#AvgReaders`` accounting and the cell-state
evolution *bit-identical* to the plain algorithms:

* **structural** — a write to a cell whose writer is already the current
  task (or unwritten) with no stored readers, and a read of a cell whose
  only reader is the current task and whose writer is the current task (or
  none), are algebraic no-ops of Algorithms 8-9: every ``precede`` call
  they would issue is the reflexive ``precede(t, t)``.  These need no
  extra state and rely only on ``precede`` being reflexive.
* **epoch-memoized reads** — after a read by task ``t`` completes with no
  race reported, the cell memoizes ``(t, mutation_epoch)``.  A later read
  by ``t`` with the memo still valid is a *pure replay*: the cell state is
  unchanged (any other access overwrites or clears the memo) and the DTRG
  is frozen (``PRECEDE`` is a pure function of DTRG state), so the reader
  loop would retire nobody new, the writer check would pass again, and the
  only list mutation — retiring and re-appending ``t`` itself — is order
  preserving because a clean read always leaves ``t`` last (or absent)
  in the reader list.  Requires an ``epoch`` supplier (the DTRG's
  mutation counter); without one the memo is disabled.

The reader *list* keeps the paper's ordering semantics; a parallel
``reader_ids`` set makes the ``task not in r`` membership test O(1) for
cells with large future-reader populations.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple

__all__ = ["ShadowCell", "ShadowMemory"]


class ShadowCell:
    """Shadow state of one shared memory location."""

    __slots__ = ("writer", "readers", "reader_ids", "fast_reader",
                 "fast_epoch", "write_site", "read_sites")

    def __init__(self) -> None:
        self.writer: Optional[int] = None
        self.readers: List[int] = []
        #: Mirror of ``readers`` for O(1) membership (list keeps ordering).
        self.reader_ids: Set[int] = set()
        #: Task of the last race-free read check, or None (see module doc).
        self.fast_reader: Optional[int] = None
        #: DTRG mutation epoch at which ``fast_reader`` was recorded.
        self.fast_epoch: int = -1
        #: Provenance retention (populated only via attach_provenance):
        #: ``(writer_tid, site_id)`` of the stored write and
        #: ``{reader_tid: site_id}`` of each task's latest read.
        self.write_site: Optional[tuple] = None
        self.read_sites: Optional[Dict[int, int]] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShadowCell(w={self.writer}, r={self.readers})"


class ShadowMemory:
    """All shadow cells plus the Algorithm 8/9 access checks.

    Parameters
    ----------
    precede:
        ``precede(prev_tid, cur_tid) -> bool`` — the DTRG query.  Must be
        reflexive (``precede(t, t)`` is True); the structural fast paths
        depend on it.
    is_future:
        ``is_future(tid) -> bool`` — the paper's ``IsFuture``, strengthened:
        must answer True for every task whose recorded access can become
        ordered with a later access via a ``get`` edge (future tasks *and*
        their spawn-tree descendants — see the module docstring).  Answering
        True too often only stores extra readers (precision is unaffected;
        each report is still confirmed by ``precede``); answering False for
        a future-covered task loses soundness.
    report:
        ``report(kind, prev_tid, cur_tid, loc)`` — race sink, called for each
        conflicting pair found.
    epoch:
        optional ``() -> int`` returning the DTRG mutation epoch
        (:attr:`DynamicTaskReachabilityGraph.mutation_epoch`).  Enables the
        same-task read memo; ``None`` disables it (structural fast paths
        stay active — they are unconditional identities).
    """

    def __init__(
        self,
        precede: Callable[[int, int], bool],
        is_future: Callable[[int], bool],
        report: Callable[[str, int, int, Hashable], None],
        epoch: Optional[Callable[[], int]] = None,
    ) -> None:
        self._cells: Dict[Hashable, ShadowCell] = {}
        self._precede = precede
        self._is_future = is_future
        self._report = report
        self._epoch = epoch
        # #AvgReaders bookkeeping: readers stored at the moment of access,
        # summed over all accesses.
        self.num_accesses = 0
        self.total_readers_seen = 0
        # Fast-path observability (harness report / benchmarks).
        self.num_fast_read_hits = 0
        self.num_fast_write_hits = 0
        #: PRECEDE calls the fast paths skipped that the plain Algorithms
        #: 8-9 would have issued.
        self.num_precede_calls_saved = 0
        # Observability hook (installed by attach_observability; the
        # default path carries no instrumentation at all).
        self._obs = None

    # ------------------------------------------------------------------ #
    # Observability (repro.obs)                                          #
    # ------------------------------------------------------------------ #
    def attach_observability(self, obs) -> None:
        """Install per-access tracing/metrics instrumentation.

        Null-object protocol: ``None`` or a disabled observability object
        is ignored and the default (uninstrumented) :meth:`read`/
        :meth:`write` stay in place.  When enabled, the two access checks
        are shadowed by traced twins reporting each check's kind, stored
        reader population and wall time to ``obs`` (the population feeds
        the ``cell_readers`` histogram behind Table 2's ``#AvgReaders``).

        Attachment is construction-time wiring, not something to flip
        mid-run: the hooks install by rebinding :meth:`read`/:meth:`write`
        as instance attributes, which a concurrently executing runtime
        (``ThreadRuntime``) could observe half-applied — and even serially
        the pre-attachment accesses would be missing from the trace.  Once
        any access has been checked (or any cell exists), attaching raises
        :class:`~repro.runtime.errors.RuntimeStateError`.
        """
        if obs is None or not getattr(obs, "enabled", False):
            return
        self._guard_attach("attach_observability")
        self._obs = obs
        self.read = self._traced_read
        self.write = self._traced_write

    def attach_provenance(self, prov) -> None:
        """Retain the call site of each stored access (race provenance).

        Null-object protocol like :meth:`attach_observability`: ``None``
        or a disabled provenance object leaves the access checks alone.
        When enabled, :meth:`read`/:meth:`write` are wrapped (composing
        with any already-installed traced twins) so that after the plain
        check runs, the cell remembers which site produced the stored
        writer / each stored reader — the detector reads these back when
        it attributes ``Race.prev_site``.  The wrapper runs *after* the
        check, so races reported during the check see the sites of the
        *previous* accesses, exactly the retained step pair.

        Like :meth:`attach_observability`, attaching after any access has
        been checked raises :class:`~repro.runtime.errors.RuntimeStateError`
        (instance-attribute rebinding is not safe mid-flight, and earlier
        retentions would lack sites).
        """
        if prov is None or not getattr(prov, "enabled", False):
            return
        self._guard_attach("attach_provenance")
        inner_read, inner_write = self.read, self.write
        cells = self._cells

        def prov_read(task: int, loc: Hashable) -> None:
            inner_read(task, loc)
            cell = cells[loc]
            if cell.read_sites is None:
                cell.read_sites = {}
            cell.read_sites[task] = prov.current_site

        def prov_write(task: int, loc: Hashable) -> None:
            inner_write(task, loc)
            cells[loc].write_site = (task, prov.current_site)

        self.read = prov_read
        self.write = prov_write

    def _guard_attach(self, what: str) -> None:
        if self._cells or self.num_accesses:
            from repro.runtime.errors import RuntimeStateError

            raise RuntimeStateError(
                f"{what} after accesses were checked: attach hooks at "
                "construction time, before the shadow memory observes any "
                "access (rebinding the access checks mid-flight is unsafe "
                "under a concurrent runtime and would leave earlier "
                "accesses uninstrumented)"
            )

    def stored_site(self, kind: str, prev: int, loc: Hashable) -> int:
        """Site id retained for the *previous* access of a race.

        ``kind`` is the race kind string: for ``read-write`` the previous
        access is ``prev``'s stored read, otherwise ``prev``'s stored
        write.  Returns 0 (unknown) when provenance never attached or the
        retention predates attachment.
        """
        cell = self._cells.get(loc)
        if cell is None:
            return 0
        if kind == "read-write":
            sites = cell.read_sites
            return sites.get(prev, 0) if sites else 0
        ws = cell.write_site
        if ws is not None and ws[0] == prev:
            return ws[1]
        return 0

    def _traced_read(self, task: int, loc: Hashable) -> None:
        from time import perf_counter_ns

        readers0 = self.total_readers_seen
        start = perf_counter_ns()
        ShadowMemory.read(self, task, loc)
        dur = perf_counter_ns() - start
        # The plain check adds the stored population to the running total
        # exactly once per access, so the delta is the population it saw.
        self._obs.on_shadow_access(
            "read", task, loc, self.total_readers_seen - readers0, dur
        )

    def _traced_write(self, task: int, loc: Hashable) -> None:
        from time import perf_counter_ns

        readers0 = self.total_readers_seen
        start = perf_counter_ns()
        ShadowMemory.write(self, task, loc)
        dur = perf_counter_ns() - start
        self._obs.on_shadow_access(
            "write", task, loc, self.total_readers_seen - readers0, dur
        )

    # ------------------------------------------------------------------ #
    def cell(self, loc: Hashable) -> ShadowCell:
        """The shadow cell for ``loc``, created on first touch."""
        cell = self._cells.get(loc)
        if cell is None:
            cell = ShadowCell()
            self._cells[loc] = cell
        return cell

    def write(self, task: int, loc: Hashable) -> None:
        """Algorithm 8 — write check.

        Every stored reader and the stored writer must precede the writing
        task; offenders are reported.  Readers that do precede are retired
        (the new write supersedes them); the writer shadow becomes the
        current task.
        """
        cell = self.cell(loc)
        self.num_accesses += 1
        readers = cell.readers
        self.total_readers_seen += len(readers)
        w = cell.writer
        if not readers and (w is None or w == task):
            # Structural fast path: the reader loop is empty and the writer
            # check is skipped (w is None) or reflexive (w == task), so
            # Algorithm 8 degenerates to installing the writer.
            self.num_fast_write_hits += 1
            cell.fast_reader = None
            cell.writer = task
            return
        precede = self._precede
        cell.fast_reader = None  # cell state changes: read memo is stale
        # Batch: each distinct tid (reader or writer) queried at most once
        # per access.  Reader tids are unique by construction, so this
        # mainly spares the writer check when the writer also read.
        verdicts: Optional[Dict[int, bool]] = {} if readers else None
        if readers:
            # Lazily copy: the common case retires or keeps everything
            # without rebuilding the list.
            surviving: Optional[List[int]] = None
            for i, x in enumerate(readers):
                v = verdicts.get(x)
                if v is None:
                    v = precede(x, task)
                    verdicts[x] = v
                if v:
                    if surviving is None:
                        surviving = readers[:i]
                    continue  # retired: happens-before the write
                self._report("read-write", x, task, loc)
                if surviving is not None:
                    surviving.append(x)  # the paper keeps racy readers
            if surviving is not None:
                cell.readers = surviving
                cell.reader_ids = set(surviving)
        if w is not None and w != task:
            v = verdicts.get(w) if verdicts is not None else None
            if v is None:
                v = precede(w, task)
            else:
                self.num_precede_calls_saved += 1
            if not v:
                self._report("write-write", w, task, loc)
        cell.writer = task

    def read(self, task: int, loc: Hashable) -> None:
        """Algorithm 9 — read check.

        The stored writer must precede the reading task.  The reader set is
        maintained so that it always contains every past parallel
        *future-covered* reader plus one representative plain-async reader
        (Lemma 4 justifies the single-representative policy for tasks no
        ``get`` edge can order).
        """
        cell = self.cell(loc)
        self.num_accesses += 1
        readers = cell.readers
        self.total_readers_seen += len(readers)
        w = cell.writer
        if w is None or w == task:
            # Structural fast paths: no writer check needed, and the reader
            # loop either is empty or only retires-and-reappends the task
            # itself (reflexivity) — both leave the cell exactly as the
            # plain Algorithm 9 would.
            if not readers:
                # Deviation: always record the first reader.
                self.num_fast_read_hits += 1
                readers.append(task)
                cell.reader_ids.add(task)
                return
            if len(readers) == 1 and readers[0] == task:
                self.num_fast_read_hits += 1
                self.num_precede_calls_saved += 1
                return
        epoch_fn = self._epoch
        epoch = -1
        if epoch_fn is not None and cell.fast_reader == task:
            epoch = epoch_fn()
            if cell.fast_epoch == epoch:
                # Pure replay of the last clean check by this task: same
                # cell state, frozen DTRG — every precede answer and the
                # resulting cell state are forced (see module docstring).
                self.num_fast_read_hits += 1
                self.num_precede_calls_saved += len(readers) + (
                    0 if w is None or w == task else 1
                )
                return
        precede = self._precede
        update = not readers  # deviation: always record the first reader
        if readers:
            task_is_future = self._is_future(task)
            surviving: Optional[List[int]] = None
            for i, x in enumerate(readers):
                if precede(x, task):
                    update = True  # x is superseded by this reader
                    if surviving is None:
                        surviving = readers[:i]
                    continue
                if task_is_future or self._is_future(x):
                    update = True  # pseudo-transitivity unavailable: keep both
                if surviving is not None:
                    surviving.append(x)
            if surviving is not None:
                cell.readers = surviving
                cell.reader_ids = set(surviving)
        raced = False
        if w is not None and w != task and not precede(w, task):
            self._report("write-read", w, task, loc)
            raced = True
        if update and task not in cell.reader_ids:
            cell.readers.append(task)
            cell.reader_ids.add(task)
        if epoch_fn is not None:
            if raced:
                cell.fast_reader = None
            else:
                cell.fast_reader = task
                cell.fast_epoch = epoch if epoch >= 0 else epoch_fn()

    # ------------------------------------------------------------------ #
    # Metrics / introspection                                            #
    # ------------------------------------------------------------------ #
    @property
    def avg_readers(self) -> float:
        """Paper's ``#AvgReaders``: mean stored-reader population observed
        at access time, over all accesses."""
        if self.num_accesses == 0:
            return 0.0
        return self.total_readers_seen / self.num_accesses

    @property
    def num_fast_path_hits(self) -> int:
        """Accesses resolved without running the full Algorithm 8/9 body."""
        return self.num_fast_read_hits + self.num_fast_write_hits

    @property
    def num_locations(self) -> int:
        """Number of distinct shared locations touched."""
        return len(self._cells)

    def state(self, loc: Hashable) -> Tuple[Optional[int], List[int]]:
        """``(writer, readers)`` of ``loc``'s cell — for tests."""
        cell = self._cells.get(loc)
        if cell is None:
            return None, []
        return cell.writer, list(cell.readers)
