"""Flat-array *live* DTRG: the object graph's hot path in integer columns.

:class:`ArrayDTRG` reimplements the mutable
:class:`~repro.core.reachability.DynamicTaskReachabilityGraph` (Algorithms
1-7 and 10) over growable ``array('q')`` columns instead of per-task
``TaskNode``/``SetData`` objects, unifying the live detector with the
PR 5 array-backed :class:`~repro.core.snapshot.DTRGSnapshot`.  One slot
per task, allocated in spawn order:

=============  ==========================================================
column         meaning (indexed by dense task index)
=============  ==========================================================
``pre``        preorder value, assigned at spawn from the shared ``dfid``
               counter (:mod:`repro.core.labels` discipline, bit-exact)
``post``       postorder value — *temporary* (near ``MAXID``, from the
               decreasing ``tmpid`` counter) until the task terminates
               and the final value is installed in place
``final``     ``bytearray`` flag: 1 once ``post`` is final
``parent``     spawn-tree parent index, ``-1`` for the root
``is_future``  ``bytearray`` flag
``uf``         union-find parent (Python list — unboxed loads are
               faster than ``array`` in the ``find`` loop)
``max_pre``    largest member preorder of the set, valid at *root* slots
``lsa``        lowest-significant-ancestor task index (``-1`` none),
               valid at root slots
``nt``         per-root non-tree predecessor task-index list (``None``
               when empty — the common case allocates nothing)
=============  ==========================================================

**The root-is-owner invariant.**  In the object graph a set's interval
label is the label *object* of its root-most member, aliased into
``SetData.label`` so a terminate finalizes the set label in place.  Here
unions always keep the *ancestor* side's root as the physical union-find
root (``uf[descendant_root] = ancestor_root``, exactly like the parallel
checker's ``_EpochDTRG`` replica), and by induction the physical root of
every set is its root-most member.  The set label is therefore just
``(pre[root], post[root])`` — no label copies, no owner indirection, and
``on_terminate`` updating ``post[i]`` in place finalizes the set label
exactly when the object graph would.

Equivalence contract (pinned by ``tests/properties/test_array_equivalence``
and the ``dtrg[array]`` fuzz ablation): verdicts, ``num_precede_queries``,
``num_visits``, ``mutation_epoch``, ``num_tree_merges`` and
``num_non_tree_edges`` are bit-identical to the object graph's cache-less
run on the same event sequence.  The PRECEDE verdict cache is *physical
root identity*-sensitive (naive union and union-by-rank pick different
representatives), so — like the parallel workers — this graph always runs
cache-less; ``cache`` is ``None`` and a detector using this engine reports
``cache_* = 0``.

Growth policy: columns grow by plain ``append`` — CPython's ``array`` and
``list`` over-allocate geometrically (~12.5% and ~12.5-25% headroom), so
appends are amortized O(1) and no manual doubling is needed.  Freezing is
a near-memcpy: :meth:`snapshot_state` hands the columns to
:meth:`DTRGSnapshot.freeze` which copies them wholesale (plus one
path-compressed ``find`` per task for the ``rep`` column and a CSR pack
of the ``nt`` lists).
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, List, Optional

from repro.core.labels import MAXID

__all__ = ["ArrayDTRG"]


class ArrayDTRG:
    """Growable flat-column DTRG with the object graph's exact counter
    discipline (see module docstring).

    Two API layers:

    * **key layer** — ``add_root`` / ``add_task`` / ``on_terminate`` /
      ``record_join`` / ``merge`` / ``precede`` by task key, drop-in for
      the detector;
    * **index layer** — ``*_idx`` twins taking dense slot indices, used
      by the fast checker whose encoded traces already carry dense
      indices (:func:`repro.core.events.encode_trace` renumbers tasks in
      the same spawn order this graph allocates slots, so the mapping is
      the identity).
    """

    __slots__ = (
        "index", "keys", "names",
        "pre", "post", "final", "parent", "is_future",
        "uf", "max_pre", "lsa", "nt",
        "mutation_epoch", "num_precede_queries", "num_visits",
        "num_non_tree_edges", "num_tree_merges",
        "cache",
        "_dfid", "_tmpid", "_stamp", "_qid", "_memo", "_memo_epoch",
    )

    def __init__(self) -> None:
        self.index: Dict[Hashable, int] = {}
        self.keys: List[Hashable] = []
        self.names: List[str] = []
        self.pre = array("q")
        self.post = array("q")
        self.final = bytearray()
        self.parent = array("q")
        self.is_future = bytearray()
        self.uf: List[int] = []
        self.max_pre = array("q")
        self.lsa = array("q")
        self.nt: List[Optional[list]] = []
        self.mutation_epoch = 0
        self.num_precede_queries = 0
        self.num_visits = 0
        self.num_non_tree_edges = 0
        self.num_tree_merges = 0
        #: Always ``None``: the array engine runs cache-less (see module
        #: docstring); kept as an attribute for detector API parity.
        self.cache = None
        self._dfid = 0
        self._tmpid = MAXID
        self._stamp: List[int] = []
        self._qid = 0
        #: Internal epoch-keyed verdict memo for queries that survive the
        #: level-0 checks — the same soundness argument as the object
        #: graph's PrecedeCache (roots only change under mutations, every
        #: mutation bumps the epoch, and the memo is dropped on any epoch
        #: change), but private: hit/miss counts depend on which member is
        #: the physical set representative, so they are not comparable
        #: across engines and the public ``cache_*`` columns stay 0.
        self._memo: Dict = {}
        self._memo_epoch = 0

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.uf)

    @property
    def num_tasks(self) -> int:
        return len(self.uf)

    # ------------------------------------------------------------------ #
    # Mutation — index layer                                             #
    # ------------------------------------------------------------------ #
    def _new_slot(self, parent_idx: int, is_future: bool, key, name) -> int:
        i = len(self.uf)
        self.pre.append(self._dfid)
        self.post.append(self._tmpid)
        self.max_pre.append(self._dfid)
        self._dfid += 1
        self._tmpid -= 1
        self.final.append(0)
        self.parent.append(parent_idx)
        self.is_future.append(1 if is_future else 0)
        self.uf.append(i)
        if parent_idx < 0:
            self.lsa.append(-1)
        else:
            # Algorithm 2 lines 7-11: LSA is the parent itself if the
            # parent's *set* has incoming non-tree edges, else inherited.
            rp = self.find(parent_idx)
            self.lsa.append(parent_idx if self.nt[rp] else self.lsa[rp])
        self.nt.append(None)
        self._stamp.append(0)
        if key is None:
            key = i
        self.index[key] = i
        self.keys.append(key)
        self.names.append(str(key) if name is None else name)
        return i

    def add_root_idx(self, key=None, name: str = "main") -> int:
        """Register the main task (Algorithm 1).  Returns slot 0."""
        if self.uf:
            raise ValueError("root already added")
        return self._new_slot(-1, False, key, name)

    def add_task_idx(self, parent_idx: int, is_future: bool,
                     key=None, name: Optional[str] = None) -> int:
        """Register a spawn (Algorithm 2) by parent slot index; the child
        gets the next dense index (== ``key`` when ``key`` is omitted)."""
        i = self._new_slot(parent_idx, is_future, key, name)
        self.mutation_epoch += 1
        return i

    def on_terminate_idx(self, i: int) -> None:
        """Install the final postorder of a terminating task
        (Algorithm 3) — finalizes its set's label in place when the task
        is a set root (the root-is-owner invariant)."""
        if self.final[i]:
            raise ValueError("label already finalized")
        self.post[i] = self._dfid
        self.final[i] = 1
        self._dfid += 1
        self._tmpid += 1
        self.mutation_epoch += 1

    def record_join_idx(self, consumer_idx: int, producer_idx: int) -> None:
        """Process ``consumer.get(producer)`` (Algorithm 4)."""
        rc = self.find(consumer_idx)
        if rc == self.find(producer_idx):
            return  # repeated get after an earlier merge
        par = self.parent[producer_idx]
        if par >= 0 and self.find(par) == rc:
            self.merge_idx(consumer_idx, producer_idx)
        else:
            nt_c = self.nt[rc]
            if nt_c is None:
                self.nt[rc] = [producer_idx]
            else:
                nt_c.append(producer_idx)
            self.num_non_tree_edges += 1
            self.mutation_epoch += 1

    def merge_idx(self, ancestor_idx: int, descendant_idx: int) -> None:
        """Tree-join merge (Algorithm 7): union keeping the ancestor
        side's root (and thus its label/LSA, which live at the root
        slot), concatenating non-tree lists ancestor-first."""
        ra = self.find(ancestor_idx)
        rb = self.find(descendant_idx)
        if ra == rb:
            return  # already one set (e.g. future both got and IEF-joined)
        nt_b = self.nt[rb]
        if nt_b:
            nt_a = self.nt[ra]
            if nt_a is None:
                self.nt[ra] = list(nt_b)
            else:
                nt_a.extend(nt_b)
        if self.max_pre[rb] > self.max_pre[ra]:
            self.max_pre[ra] = self.max_pre[rb]
        self.uf[rb] = ra
        self.nt[rb] = None  # absorbed above; drop the dead list
        self.num_tree_merges += 1
        self.mutation_epoch += 1

    # ------------------------------------------------------------------ #
    # Mutation — key layer (detector-compatible)                         #
    # ------------------------------------------------------------------ #
    def add_root(self, key: Hashable, name: str = "main") -> int:
        return self.add_root_idx(key, name)

    def add_task(self, parent_key: Hashable, child_key: Hashable, *,
                 is_future: bool, name: Optional[str] = None) -> int:
        return self.add_task_idx(
            self.index[parent_key], is_future, child_key,
            name or str(child_key),
        )

    def on_terminate(self, key: Hashable) -> None:
        self.on_terminate_idx(self.index[key])

    def record_join(self, consumer_key: Hashable,
                    producer_key: Hashable) -> None:
        self.record_join_idx(self.index[consumer_key],
                             self.index[producer_key])

    def merge(self, ancestor_key: Hashable, descendant_key: Hashable) -> None:
        self.merge_idx(self.index[ancestor_key], self.index[descendant_key])

    def begin_finish(self, owner_key: Hashable) -> None:
        """No-op protocol hook (no epoch bump) — like the object DTRG,
        end-finish ordering arrives via :meth:`merge`."""

    def end_finish(self, owner_key: Hashable) -> None:
        """No-op protocol hook — see :meth:`begin_finish`."""

    # ------------------------------------------------------------------ #
    # Union-find with path halving (mirrors DisjointSets.find)           #
    # ------------------------------------------------------------------ #
    def find(self, x: int) -> int:
        uf = self.uf
        p = uf[x]
        while p != x:
            g = uf[p]
            uf[x] = g
            x = g
            p = uf[x]
        return x

    def same_set_idx(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    # ------------------------------------------------------------------ #
    # Algorithm 10 (default strategy: intervals + memoized VISIT + LSA), #
    # allocation-free: the visited set is an integer-stamp column reused #
    # across queries by bumping one query id.                            #
    # ------------------------------------------------------------------ #
    def precede(self, a_key: Hashable, b_key: Hashable) -> bool:
        """``PRECEDE(A, B)`` by task key (detector entry point)."""
        self.num_precede_queries += 1
        if a_key == b_key:
            return True
        return self._precede(self.index[a_key], self.index[b_key])

    def precede_idx(self, ia: int, ib: int) -> bool:
        """``PRECEDE`` by dense slot index (fast-checker entry point)."""
        self.num_precede_queries += 1
        if ia == ib:
            return True
        return self._precede(ia, ib)

    def _precede(self, ia: int, ib: int) -> bool:
        ra = self.find(ia)
        rb = self.find(ib)
        if ra == rb:
            return True
        pre = self.pre
        post = self.post
        la_pre = pre[ra]
        la_post = post[ra]
        if la_pre <= pre[rb] and post[rb] <= la_post:
            return True
        if la_pre > self.max_pre[rb]:
            return False
        if not self.nt[rb] and self.lsa[rb] < 0:
            return False
        memo = self._memo
        if self._memo_epoch != self.mutation_epoch:
            memo.clear()
            self._memo_epoch = self.mutation_epoch
        else:
            v = memo.get((ra, rb))
            if v is not None:
                return v
        self._qid += 1
        qid = self._qid
        self._stamp[rb] = qid
        self.num_visits += 1
        v = self._explore(ra, la_pre, la_post, rb, qid)
        memo[(ra, rb)] = v
        return v

    def _visit(self, ra: int, la_pre: int, la_post: int,
               b_idx: int, qid: int) -> bool:
        rb = self.find(b_idx)
        if rb == ra:
            return True
        if la_pre <= self.pre[rb] and self.post[rb] <= la_post:
            return True
        if la_pre > self.max_pre[rb]:
            return False
        stamp = self._stamp
        if stamp[rb] == qid:
            return False
        stamp[rb] = qid
        self.num_visits += 1
        return self._explore(ra, la_pre, la_post, rb, qid)

    def _explore(self, ra: int, la_pre: int, la_post: int,
                 rb: int, qid: int) -> bool:
        visit = self._visit
        nt_b = self.nt[rb]
        if nt_b:
            for pred in nt_b:
                if visit(ra, la_pre, la_post, pred, qid):
                    return True
        stamp, lsa = self._stamp, self.lsa
        anc = lsa[rb]
        while anc >= 0:
            r = self.find(anc)
            if stamp[r] != qid:
                stamp[r] = qid
                self.num_visits += 1
                nt_r = self.nt[r]
                if nt_r:
                    for pred in nt_r:
                        if visit(ra, la_pre, la_post, pred, qid):
                            return True
            anc = lsa[r]
        return False

    # ------------------------------------------------------------------ #
    # Freeze fast path                                                   #
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """Near-memcpy column export consumed by
        :meth:`DTRGSnapshot.freeze`.

        The label columns are whole-column copies of ``pre``/``post``:
        under the root-is-owner invariant the set label at every ``rep``
        slot *is* that slot's own interval, so no gather is needed.
        ``max_pre``/``lsa`` are likewise copied wholesale — non-root
        slots carry stale spawn-time values, which the snapshot never
        reads (it only indexes those columns at ``rep`` slots).
        """
        n = len(self.uf)
        if self.final.count(1) != n:
            for i in range(n):
                if not self.final[i]:
                    raise ValueError(
                        f"cannot freeze: task {self.keys[i]!r} has not "
                        "terminated (temporary postorder) — the snapshot "
                        "reflects the final state of a finished graph only"
                    )
        find = self.find
        rep = array("q", bytes(8 * n))
        for i in range(n):
            rep[i] = find(i)
        nt = self.nt
        nt_start = array("q", bytes(8 * (n + 1)))
        total = 0
        for i in range(n):
            nt_start[i] = total
            nt_i = nt[i]
            if nt_i and self.uf[i] == i:
                total += len(nt_i)
        nt_start[n] = total
        nt_prod = array("q", bytes(8 * total))
        pos = 0
        for i in range(n):
            nt_i = nt[i]
            if nt_i and self.uf[i] == i:
                for p in nt_i:
                    nt_prod[pos] = p
                    pos += 1
        return {
            "keys": list(self.keys),
            "is_future": bytearray(self.is_future),
            "pre": array("q", self.pre),
            "post": array("q", self.post),
            "parent": array("q", self.parent),
            "rep": rep,
            "label_pre": array("q", self.pre),
            "label_post": array("q", self.post),
            "max_pre": array("q", self.max_pre),
            "lsa": array("q", self.lsa),
            "nt_start": nt_start,
            "nt_prod": nt_prod,
        }
