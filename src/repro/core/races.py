"""Race records and reporting policies.

Definition 3 (Section 3): a data race may occur between steps ``u`` and ``v``
iff both access a common memory location, at least one is a write, and
``u ∥ v`` (neither precedes the other in the computation graph).  Because the
programming model is restricted to async/finish/future, data races are
*determinacy* races: a race-free program is guaranteed functionally and
structurally deterministic (Appendix A.3), so each report is a genuine
potential source of nondeterminism.

The detector reports races at task granularity (the DTRG stores no steps):
each :class:`Race` names the location, the two tasks, and the access kinds.
Theorem 2 guarantees a race is reported on a location iff that location is
racy, so the per-location verdict — what the test oracle checks — is exact
even though the specific step pair is not retained.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Set

__all__ = ["AccessKind", "Race", "RaceReport", "ReportPolicy"]


class AccessKind(enum.Enum):
    """Conflict flavor, named prev-access/current-access."""

    READ_WRITE = "read-write"    #: earlier read vs current write
    WRITE_WRITE = "write-write"  #: earlier write vs current write
    WRITE_READ = "write-read"    #: earlier write vs current read

    def __str__(self) -> str:
        return self.value


class ReportPolicy(enum.Enum):
    """What to do when a race is found."""

    COLLECT = "collect"  #: record and keep executing (default; full reports)
    RAISE = "raise"      #: raise :class:`repro.runtime.errors.RaceError`


@dataclass(frozen=True)
class Race:
    """One detected determinacy race.

    ``prev_task``/``current_task`` are task ids; ``prev_name`` and
    ``current_name`` carry the human-readable task names for messages.

    The provenance fields are inert by default (``None``): when the run
    carries a :class:`repro.obs.provenance.RaceProvenance`, the detector
    fills ``prev_site``/``current_site`` with the two accesses' call-site
    labels and ``witness_id`` with the id of the matching
    :class:`~repro.obs.provenance.RaceWitness` in ``detector.witnesses``.
    They are excluded from equality and from :attr:`pair_key`, so race
    identity and deduplication are unchanged either way.
    """

    loc: Hashable
    kind: AccessKind
    prev_task: int
    current_task: int
    prev_name: str = ""
    current_name: str = ""
    prev_site: Optional[str] = field(default=None, compare=False)
    current_site: Optional[str] = field(default=None, compare=False)
    witness_id: Optional[str] = field(default=None, compare=False)

    def __str__(self) -> str:
        return (
            f"determinacy race ({self.kind}) on {self.loc!r}: "
            f"task {self.prev_name or self.prev_task} vs "
            f"task {self.current_name or self.current_task}"
        )

    @property
    def pair_key(self):
        """Deduplication key: location + unordered task pair + kind."""
        a, b = sorted((self.prev_task, self.current_task))
        return (self.loc, a, b, self.kind)


class RaceReport:
    """Accumulates detected races.

    With ``dedupe=True`` (default) repeated reports of the same
    (location, task pair, kind) triple are recorded once; the paper's
    algorithm can re-report e.g. a racing reader that stays in the shadow
    reader set (Algorithm 8 removes a reader only when it precedes the
    writer).
    """

    def __init__(self, dedupe: bool = True) -> None:
        self.races: List[Race] = []
        self._dedupe = dedupe
        self._seen: Set[tuple] = set()
        self._racy_locations: Set[Hashable] = set()

    def add(self, race: Race) -> bool:
        """Record ``race``; returns False if suppressed as a duplicate."""
        self._racy_locations.add(race.loc)
        if self._dedupe:
            key = race.pair_key
            if key in self._seen:
                return False
            self._seen.add(key)
        self.races.append(race)
        return True

    @property
    def racy_locations(self) -> Set[Hashable]:
        """The set of locations with at least one reported race — the
        quantity Theorem 2 makes exact, used for oracle comparison."""
        return set(self._racy_locations)

    @property
    def has_races(self) -> bool:
        return bool(self.races)

    def __len__(self) -> int:
        return len(self.races)

    def __iter__(self):
        return iter(self.races)

    def summary(self) -> str:
        """Multi-line human-readable summary.

        Rendering order is deterministic — races are stable-sorted by
        (location, task pair, kind) — so downstream consumers hashing the
        text (fuzz triage signatures, CI logs) never depend on shadow-cell
        dict order.  Iteration over the report itself stays in insertion
        (detection) order.
        """
        if not self.races:
            return "no determinacy races detected"
        ordered = sorted(
            self.races,
            key=lambda r: (repr(r.loc),) + r.pair_key[1:3] + (r.kind.value,),
        )
        lines = [f"{len(self.races)} determinacy race(s) detected:"]
        for race in ordered:
            lines.append(f"  - {race}")
            if race.prev_site or race.current_site:
                lines.append(
                    f"      prev access at {race.prev_site or '<unknown>'}; "
                    f"current access at {race.current_site or '<unknown>'}"
                )
        return "\n".join(lines)
