"""Execution events, the observer interface, and recorded traces.

The paper instruments a running Habanero-Java program so the detector is
invoked "at async, finish and future boundaries, future get operations, and
also on reads and writes to shared memory locations" (Section 5).  We model
that instrumentation as an *event stream*: the serial depth-first runtime
emits one event per boundary, and any number of :class:`ExecutionObserver`
instances consume it.

Observers shipped with this library:

* :class:`repro.core.detector.DeterminacyRaceDetector` — the paper's
  Algorithms 1-10,
* the baselines in :mod:`repro.baselines` (SP-bags, ESP-bags, vector clocks,
  brute force),
* :class:`repro.graph.computation_graph.GraphBuilder` — builds the Section 3
  computation graph (the testing oracle's substrate),
* :class:`repro.harness.metrics.MetricsCollector` — the Table 2 counters,
* :class:`repro.memory.tracer.TraceRecorder` — records the stream into a
  :class:`Trace` that can later be replayed into any observer, which is how
  the detector micro-benchmarks time detection without re-running workloads.

Event identity uses task ids and location keys only, so a recorded trace is
self-contained and replayable in a fresh process.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Hashable, Iterable, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.finish import FinishScope
    from repro.runtime.task import Task

__all__ = [
    "ExecutionObserver",
    "TaskCreateEvent",
    "TaskEndEvent",
    "GetEvent",
    "FinishStartEvent",
    "FinishEndEvent",
    "ReadEvent",
    "WriteEvent",
    "Event",
    "Trace",
    "EncodedTrace",
    "encode_trace",
]

#: Type of a shared-memory location key: any hashable value.  The shared
#: wrappers use ``(object_name, index)`` tuples.
LocationKey = Hashable


class ExecutionObserver:
    """Base class for consumers of the instrumentation event stream.

    All hooks default to no-ops so observers override only what they need.
    Hook order for one program run (serial depth-first):

    1. ``on_init(main)`` once, before user code runs.
    2. ``on_task_create(parent, child)`` at each ``async``/``future`` spawn,
       *before* the child's body runs.
    3. child body events (recursively), then ``on_task_end(child)``.
    4. ``on_get(consumer, producer)`` at each ``get()``.
    5. ``on_finish_start(scope)`` / ``on_finish_end(scope)`` around scopes;
       ``on_finish_end`` fires after every task registered to the scope has
       ended.
    6. ``on_read(task, loc)`` / ``on_write(task, loc)`` at shared accesses.
    7. ``on_shutdown(main)`` once, after the implicit root finish closes.
    """

    def on_init(self, main: "Task") -> None: ...

    def on_task_create(self, parent: "Task", child: "Task") -> None: ...

    def on_task_end(self, task: "Task") -> None: ...

    def on_get(self, consumer: "Task", producer: "Task") -> None: ...

    def on_finish_start(self, scope: "FinishScope") -> None: ...

    def on_finish_end(self, scope: "FinishScope") -> None: ...

    def on_read(self, task: "Task", loc: LocationKey) -> None: ...

    def on_write(self, task: "Task", loc: LocationKey) -> None: ...

    def on_shutdown(self, main: "Task") -> None: ...


# ---------------------------------------------------------------------- #
# Recorded-event dataclasses                                             #
#
# ``site`` is the optional provenance call-site label (``file:line
# (function)``) recorded when a :class:`repro.obs.provenance.RaceProvenance`
# is attached to the recorder.  It defaults to ``None`` so traces recorded
# without provenance — and the codec — are unchanged; traces pickled before
# the field existed lack the attribute entirely, so readers must use
# ``getattr(event, "site", None)``.
# ---------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class TaskCreateEvent:
    parent: int          #: tid of the spawning task
    child: int           #: tid of the new task
    is_future: bool      #: TaskKind of the child
    ief: int             #: fid of the child's immediately enclosing finish
    site: Optional[str] = None


@dataclass(frozen=True, slots=True)
class TaskEndEvent:
    task: int


@dataclass(frozen=True, slots=True)
class GetEvent:
    consumer: int
    producer: int
    site: Optional[str] = None


@dataclass(frozen=True, slots=True)
class FinishStartEvent:
    fid: int
    owner: int
    enclosing: int  #: fid of the enclosing scope; -1 for the root finish


@dataclass(frozen=True, slots=True)
class FinishEndEvent:
    fid: int


@dataclass(frozen=True, slots=True)
class ReadEvent:
    task: int
    loc: LocationKey
    site: Optional[str] = None


@dataclass(frozen=True, slots=True)
class WriteEvent:
    task: int
    loc: LocationKey
    site: Optional[str] = None


Event = Union[
    TaskCreateEvent,
    TaskEndEvent,
    GetEvent,
    FinishStartEvent,
    FinishEndEvent,
    ReadEvent,
    WriteEvent,
]


@dataclass
class Trace:
    """A fully recorded instrumentation stream.

    ``events`` excludes the implicit init/shutdown bracket; replay
    re-synthesizes those.  Traces are value objects: equality compares the
    event lists, and they pickle cleanly.
    """

    events: List[Event] = field(default_factory=list)

    def append(self, event: Event) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def counts(self) -> Tuple[int, int, int]:
        """Return ``(num_tasks_created, num_gets, num_accesses)`` — a quick
        sanity fingerprint used by tests."""
        tasks = gets = accesses = 0
        for e in self.events:
            if isinstance(e, TaskCreateEvent):
                tasks += 1
            elif isinstance(e, GetEvent):
                gets += 1
            elif isinstance(e, (ReadEvent, WriteEvent)):
                accesses += 1
        return tasks, gets, accesses

    # ------------------------------------------------------------------ #
    # Persistence: traces are self-contained (ids + location keys only),
    # so a pickled trace recorded once can be replayed into any detector
    # in a fresh process — how the benchmark suites share inputs.
    # ------------------------------------------------------------------ #
    def save(self, path) -> None:
        """Pickle the trace to ``path``."""
        import pickle

        with open(path, "wb") as fh:
            pickle.dump(self, fh, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def load(path) -> "Trace":
        """Load a trace previously written by :meth:`save`.

        Only unpickle traces you created yourself — pickle executes code.
        """
        import pickle

        with open(path, "rb") as fh:
            trace = pickle.load(fh)
        if not isinstance(trace, Trace):
            raise TypeError(f"{path} does not contain a Trace")
        return trace

# ---------------------------------------------------------------------- #
# Encoded traces: the flat-array hot-path representation                 #
#
# ``encode_trace`` lowers a recorded event stream into integer columns so
# the fast checker (:mod:`repro.core.fastcheck`) and the sharded builder
# can iterate it without touching a Python object per event:
#
# * task ids are renumbered to *dense indices* in creation order (main
#   task = index 0, each ``TaskCreateEvent`` appends the next index) —
#   the same order in which an :class:`~repro.core.array_dtrg.ArrayDTRG`
#   allocates slots, so access rows can be consumed with zero lookups;
# * location keys are interned to dense ids (``locs[loc_id]`` recovers
#   the original key for race reports);
# * access events become 3-wide rows ``(is_write, task_idx, loc_id)`` in
#   one ``array('q')``; structure events (rare) stay as small tuples;
# * the stream is run-length segmented into alternating access/structure
#   runs, so a decoder dispatches once per *block* instead of once per
#   event and can time the structure and access phases separately.
# ---------------------------------------------------------------------- #

#: Structure-event opcodes used in :attr:`EncodedTrace.structure` tuples.
OP_TASK_CREATE = 2
OP_TASK_END = 3
OP_GET = 4
OP_FINISH_START = 5
OP_FINISH_END = 6

#: Run kinds in :attr:`EncodedTrace.runs` (flat ``(kind, count)`` pairs).
RUN_ACCESS = 0
RUN_STRUCTURE = 1


class EncodedTrace:
    """A :class:`Trace` lowered to flat integer arrays (see above).

    Attributes
    ----------
    access:
        ``array('q')`` of 3-wide rows ``(is_write, task_idx, loc_id)``,
        one row per read/write event, in stream order.
    structure:
        list of tuples, one per structure event, in stream order:
        ``(OP_TASK_CREATE, parent_idx, is_future, ief)`` (the child index
        is implicit — indices are assigned in creation order),
        ``(OP_TASK_END, task_idx)``, ``(OP_GET, consumer_idx,
        producer_idx)``, ``(OP_FINISH_START, fid, owner_idx, enclosing)``,
        ``(OP_FINISH_END, fid)``.
    runs:
        ``array('q')`` of flat ``(kind, count)`` pairs segmenting the
        stream into maximal same-kind runs (``RUN_ACCESS`` counts access
        rows, ``RUN_STRUCTURE`` counts structure tuples).
    task_keys:
        dense task index -> original tid (``task_keys[0]`` is the main
        task's tid, 0 by replay convention).
    is_future:
        ``bytearray`` flag per dense task index (main task -> 0).
    locs:
        dense loc id -> original location key.
    access_sites:
        ``None`` when no access event carries a provenance site, else a
        list aligned with access-row ordinals (``site`` of row ``k``).
    """

    __slots__ = (
        "access", "structure", "runs", "task_keys", "is_future",
        "locs", "loc_index", "access_sites",
        "num_access_events", "num_structure_events",
    )

    def __init__(self) -> None:
        self.access = array("q")
        self.structure: List[tuple] = []
        self.runs = array("q")
        self.task_keys: List[int] = [0]
        self.is_future = bytearray(1)
        self.locs: List[LocationKey] = []
        self.loc_index: Dict[LocationKey, int] = {}
        self.access_sites: Optional[List[Optional[str]]] = None
        self.num_access_events = 0
        self.num_structure_events = 0

    def __len__(self) -> int:
        return self.num_access_events + self.num_structure_events

    @property
    def num_tasks(self) -> int:
        return len(self.task_keys)

    @property
    def num_locations(self) -> int:
        return len(self.locs)


def encode_trace(events: Iterable[Event]) -> "EncodedTrace":
    """Lower ``events`` (a :class:`Trace` or any event iterable) into an
    :class:`EncodedTrace`.

    Unknown task ids referenced before their ``TaskCreateEvent`` (possible
    only in hand-built traces) raise ``KeyError``, matching replay.
    """
    enc = EncodedTrace()
    acc: List[int] = []          # flat access rows, converted once at the end
    structure = enc.structure
    runs: List[int] = []
    task_index: Dict[int, int] = {0: 0}
    task_keys = enc.task_keys
    is_future = enc.is_future
    loc_index = enc.loc_index
    locs = enc.locs
    sites: Optional[List[Optional[str]]] = None
    run_kind = -1                # current run's kind; -1 = none yet
    n_access = 0

    for e in events:
        tp = type(e)
        if tp is ReadEvent or tp is WriteEvent:
            if run_kind != RUN_ACCESS:
                runs.append(RUN_ACCESS)
                runs.append(0)
                run_kind = RUN_ACCESS
            runs[-1] += 1
            loc = e.loc
            lid = loc_index.get(loc)
            if lid is None:
                lid = loc_index[loc] = len(locs)
                locs.append(loc)
            acc.append(1 if tp is WriteEvent else 0)
            acc.append(task_index[e.task])
            acc.append(lid)
            site = e.site
            if site is not None:
                if sites is None:
                    sites = [None] * n_access
                else:
                    sites.extend([None] * (n_access - len(sites)))
                sites.append(site)
            n_access += 1
            continue
        # Structure event (rare path).
        if run_kind != RUN_STRUCTURE:
            runs.append(RUN_STRUCTURE)
            runs.append(0)
            run_kind = RUN_STRUCTURE
        runs[-1] += 1
        if tp is TaskCreateEvent:
            child_idx = len(task_keys)
            structure.append(
                (OP_TASK_CREATE, task_index[e.parent],
                 1 if e.is_future else 0, e.ief)
            )
            task_index[e.child] = child_idx
            task_keys.append(e.child)
            is_future.append(1 if e.is_future else 0)
        elif tp is TaskEndEvent:
            structure.append((OP_TASK_END, task_index[e.task]))
        elif tp is GetEvent:
            structure.append(
                (OP_GET, task_index[e.consumer], task_index[e.producer])
            )
        elif tp is FinishStartEvent:
            structure.append(
                (OP_FINISH_START, e.fid, task_index[e.owner], e.enclosing)
            )
        elif tp is FinishEndEvent:
            structure.append((OP_FINISH_END, e.fid))
        else:
            raise TypeError(f"unknown event type: {e!r}")

    if sites is not None and len(sites) < n_access:
        sites.extend([None] * (n_access - len(sites)))
    enc.access = array("q", acc)
    enc.runs = array("q", runs)
    enc.access_sites = sites
    enc.num_access_events = n_access
    enc.num_structure_events = len(structure)
    return enc
