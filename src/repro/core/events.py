"""Execution events, the observer interface, and recorded traces.

The paper instruments a running Habanero-Java program so the detector is
invoked "at async, finish and future boundaries, future get operations, and
also on reads and writes to shared memory locations" (Section 5).  We model
that instrumentation as an *event stream*: the serial depth-first runtime
emits one event per boundary, and any number of :class:`ExecutionObserver`
instances consume it.

Observers shipped with this library:

* :class:`repro.core.detector.DeterminacyRaceDetector` — the paper's
  Algorithms 1-10,
* the baselines in :mod:`repro.baselines` (SP-bags, ESP-bags, vector clocks,
  brute force),
* :class:`repro.graph.computation_graph.GraphBuilder` — builds the Section 3
  computation graph (the testing oracle's substrate),
* :class:`repro.harness.metrics.MetricsCollector` — the Table 2 counters,
* :class:`repro.memory.tracer.TraceRecorder` — records the stream into a
  :class:`Trace` that can later be replayed into any observer, which is how
  the detector micro-benchmarks time detection without re-running workloads.

Event identity uses task ids and location keys only, so a recorded trace is
self-contained and replayable in a fresh process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.finish import FinishScope
    from repro.runtime.task import Task

__all__ = [
    "ExecutionObserver",
    "TaskCreateEvent",
    "TaskEndEvent",
    "GetEvent",
    "FinishStartEvent",
    "FinishEndEvent",
    "ReadEvent",
    "WriteEvent",
    "Event",
    "Trace",
]

#: Type of a shared-memory location key: any hashable value.  The shared
#: wrappers use ``(object_name, index)`` tuples.
LocationKey = Hashable


class ExecutionObserver:
    """Base class for consumers of the instrumentation event stream.

    All hooks default to no-ops so observers override only what they need.
    Hook order for one program run (serial depth-first):

    1. ``on_init(main)`` once, before user code runs.
    2. ``on_task_create(parent, child)`` at each ``async``/``future`` spawn,
       *before* the child's body runs.
    3. child body events (recursively), then ``on_task_end(child)``.
    4. ``on_get(consumer, producer)`` at each ``get()``.
    5. ``on_finish_start(scope)`` / ``on_finish_end(scope)`` around scopes;
       ``on_finish_end`` fires after every task registered to the scope has
       ended.
    6. ``on_read(task, loc)`` / ``on_write(task, loc)`` at shared accesses.
    7. ``on_shutdown(main)`` once, after the implicit root finish closes.
    """

    def on_init(self, main: "Task") -> None: ...

    def on_task_create(self, parent: "Task", child: "Task") -> None: ...

    def on_task_end(self, task: "Task") -> None: ...

    def on_get(self, consumer: "Task", producer: "Task") -> None: ...

    def on_finish_start(self, scope: "FinishScope") -> None: ...

    def on_finish_end(self, scope: "FinishScope") -> None: ...

    def on_read(self, task: "Task", loc: LocationKey) -> None: ...

    def on_write(self, task: "Task", loc: LocationKey) -> None: ...

    def on_shutdown(self, main: "Task") -> None: ...


# ---------------------------------------------------------------------- #
# Recorded-event dataclasses                                             #
#
# ``site`` is the optional provenance call-site label (``file:line
# (function)``) recorded when a :class:`repro.obs.provenance.RaceProvenance`
# is attached to the recorder.  It defaults to ``None`` so traces recorded
# without provenance — and the codec — are unchanged; traces pickled before
# the field existed lack the attribute entirely, so readers must use
# ``getattr(event, "site", None)``.
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class TaskCreateEvent:
    parent: int          #: tid of the spawning task
    child: int           #: tid of the new task
    is_future: bool      #: TaskKind of the child
    ief: int             #: fid of the child's immediately enclosing finish
    site: Optional[str] = None


@dataclass(frozen=True)
class TaskEndEvent:
    task: int


@dataclass(frozen=True)
class GetEvent:
    consumer: int
    producer: int
    site: Optional[str] = None


@dataclass(frozen=True)
class FinishStartEvent:
    fid: int
    owner: int
    enclosing: int  #: fid of the enclosing scope; -1 for the root finish


@dataclass(frozen=True)
class FinishEndEvent:
    fid: int


@dataclass(frozen=True)
class ReadEvent:
    task: int
    loc: LocationKey
    site: Optional[str] = None


@dataclass(frozen=True)
class WriteEvent:
    task: int
    loc: LocationKey
    site: Optional[str] = None


Event = Union[
    TaskCreateEvent,
    TaskEndEvent,
    GetEvent,
    FinishStartEvent,
    FinishEndEvent,
    ReadEvent,
    WriteEvent,
]


@dataclass
class Trace:
    """A fully recorded instrumentation stream.

    ``events`` excludes the implicit init/shutdown bracket; replay
    re-synthesizes those.  Traces are value objects: equality compares the
    event lists, and they pickle cleanly.
    """

    events: List[Event] = field(default_factory=list)

    def append(self, event: Event) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def counts(self) -> Tuple[int, int, int]:
        """Return ``(num_tasks_created, num_gets, num_accesses)`` — a quick
        sanity fingerprint used by tests."""
        tasks = gets = accesses = 0
        for e in self.events:
            if isinstance(e, TaskCreateEvent):
                tasks += 1
            elif isinstance(e, GetEvent):
                gets += 1
            elif isinstance(e, (ReadEvent, WriteEvent)):
                accesses += 1
        return tasks, gets, accesses

    # ------------------------------------------------------------------ #
    # Persistence: traces are self-contained (ids + location keys only),
    # so a pickled trace recorded once can be replayed into any detector
    # in a fresh process — how the benchmark suites share inputs.
    # ------------------------------------------------------------------ #
    def save(self, path) -> None:
        """Pickle the trace to ``path``."""
        import pickle

        with open(path, "wb") as fh:
            pickle.dump(self, fh, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def load(path) -> "Trace":
        """Load a trace previously written by :meth:`save`.

        Only unpickle traces you created yourself — pickle executes code.
        """
        import pickle

        with open(path, "rb") as fh:
            trace = pickle.load(fh)
        if not isinstance(trace, Trace):
            raise TypeError(f"{path} does not contain a Trace")
        return trace
