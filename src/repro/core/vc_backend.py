"""Future-aware vector clocks as an online PRECEDE engine.

``baselines/vector_clock.py`` is an *offline baseline*: a self-contained
detector with its own last-writer shadow state, used only as a fuzzer
parity row.  This module promotes the clock algebra to a full
:class:`repro.core.backend.PrecedeBackend`, so the paper's detector
(Algorithms 8–9 shadow memory, Lemma 4 reader policy, race reporting,
provenance-free) can run unchanged on top of vector clocks and be raced
head-to-head against the DTRG engines — cf. Kumar, Agrawal, Gilbert &
Utterback ("Optimal Parallel Race Detection for Fork-Join Programs with
Futures", arXiv:2112.04352), who show clock-style schemes remain
competitive when every join edge is applied eagerly.

Clock algebra
-------------
One sparse clock (``dict`` task→int) per task:

- **spawn** — the child inherits a copy of the parent's clock plus its
  own component at 1; the parent then ticks, so the child's clock never
  covers the parent's continuation (they are parallel).
- **terminate** — the task's clock is frozen (copied — the live dict
  keeps mutating only for tasks that can still execute, but freezing by
  copy makes the invariant local rather than global).
- **get / end-finish join** — the *destination* (consumer / IEF owner)
  joins the producer's frozen clock component-wise and ticks.  This is
  the rule the DTRG realizes with non-tree edges and set merges; with
  clocks it is one component-wise max, identical for tree and non-tree
  joins — futures cost nothing extra, which is the appeal.

``precede(a, b)`` with ``b`` the currently executing task (the calling
contract in ``repro.core.backend``):

- ``a`` terminated: every completed step of ``a`` is covered by ``a``'s
  final self-component, so the verdict is
  ``clock(b)[a] >= final(a)[a]``.
- ``a`` still running: ``a``'s clock keeps advancing, so no frozen
  component can witness it.  Under the serial depth-first execution the
  live tasks are exactly the current task's spawn-tree ancestor chain,
  and every completed step of an ancestor happened before control
  reached ``b`` — so the verdict is the ancestor test, computed on the
  spawn tree (this mirrors what the DTRG answers via interval
  containment for live ancestors).

Cost shape: a spawn copies the parent's clock — O(live components) per
spawn, O(T²) worst case over a T-task program — and a join is O(clock
size).  The comparison table from ``repro-bench --backends``
(``BENCH_PR7.json``, ALGORITHM.md §14.4) measures exactly that
trade-off against the DTRG's near-constant-size per-task state.
"""

from __future__ import annotations

from typing import Dict, Hashable

__all__ = ["VectorClockBackend"]


class VectorClockBackend:
    """Online vector-clock PRECEDE engine (protocol: ``PrecedeBackend``).

    ``cache`` is ``None``; ``mutation_epoch`` bumps on every structural
    mutator so the shadow memory's epoch memo stays sound.
    """

    __slots__ = (
        "_clocks",
        "_final",
        "_parent",
        "_alive",
        "mutation_epoch",
        "num_precede_queries",
        "cache",
    )

    def __init__(self) -> None:
        #: key -> live clock (mutated in place while the task runs).
        self._clocks: Dict[Hashable, Dict[Hashable, int]] = {}
        #: key -> frozen clock at termination.
        self._final: Dict[Hashable, Dict[Hashable, int]] = {}
        #: key -> parent key (spawn tree, for the live-ancestor test).
        self._parent: Dict[Hashable, Hashable] = {}
        self._alive: Dict[Hashable, bool] = {}
        self.mutation_epoch = 0
        self.num_precede_queries = 0
        self.cache = None

    # ------------------------------------------------------------------ #
    # Structural mutators                                                #
    # ------------------------------------------------------------------ #
    def add_root(self, key: Hashable, *, name: str = "") -> None:
        self._clocks[key] = {key: 1}
        self._parent[key] = None
        self._alive[key] = True
        self.mutation_epoch += 1

    def add_task(
        self,
        parent_key: Hashable,
        child_key: Hashable,
        *,
        is_future: bool = False,
        name: str = "",
    ) -> None:
        pvc = self._clocks[parent_key]
        child = dict(pvc)
        child[child_key] = 1
        self._clocks[child_key] = child
        pvc[parent_key] = pvc.get(parent_key, 0) + 1
        self._parent[child_key] = parent_key
        self._alive[child_key] = True
        self.mutation_epoch += 1

    def on_terminate(self, key: Hashable) -> None:
        self._final[key] = dict(self._clocks[key])
        self._alive[key] = False
        self.mutation_epoch += 1

    def begin_finish(self, owner_key: Hashable) -> None:
        # Scope entry carries no ordering by itself; the joins arrive
        # one merge() per joined task at scope end.
        self.mutation_epoch += 1

    def end_finish(self, owner_key: Hashable) -> None:
        self.mutation_epoch += 1

    def record_join(
        self, consumer_key: Hashable, producer_key: Hashable
    ) -> None:
        self._join(consumer_key, producer_key)

    def merge(self, ancestor_key: Hashable, descendant_key: Hashable) -> None:
        self._join(ancestor_key, descendant_key)

    def _join(self, dst: Hashable, src: Hashable) -> None:
        svc = self._final.get(src)
        if svc is None:
            raise ValueError(
                f"vector-clock join of task {src!r} before its task-end "
                "event: the event stream is not a serial depth-first "
                "execution order"
            )
        dvc = self._clocks[dst]
        for tid, stamp in svc.items():
            if stamp > dvc.get(tid, 0):
                dvc[tid] = stamp
        dvc[dst] = dvc.get(dst, 0) + 1
        self.mutation_epoch += 1

    # ------------------------------------------------------------------ #
    # Query                                                              #
    # ------------------------------------------------------------------ #
    def precede(self, a_key: Hashable, b_key: Hashable) -> bool:
        self.num_precede_queries += 1
        if a_key == b_key:
            return True
        if self._alive[a_key]:
            # Live ancestor test on the spawn tree (see module docstring).
            cursor = self._parent[b_key]
            while cursor is not None:
                if cursor == a_key:
                    return True
                cursor = self._parent[cursor]
            return False
        return self._clocks[b_key].get(a_key, 0) >= self._final[a_key][a_key]
