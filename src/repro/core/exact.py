"""Exact timestamped race detection — beyond the paper's scope assumption.

DESIGN.md deviation #4 documents a genuine boundary of the paper's
algorithm: its task-granularity structures (and its precision proof) assume
future handles flow only through the language — spawn arguments, future
values, or race-checked shared memory.  Joins conjured through channels the
model cannot express (our generator's "wild" mode) admit both false
positives and false negatives at task granularity, because a task's
*prefix* before a future spawn can be ordered with a consumer while its
*suffix* is not, and vice versa.

This module removes the assumption.  The key observation: at task
granularity the computation graph has only three kinds of in-edges into a
task's steps —

1. the task's own earlier steps (program order),
2. join edges into the task, each landing at a known *time*,
3. the spawn edge from the parent into the task's first step.

So "does the access A made at time ``a`` precede the current step?" is
answerable by a **backward search over (task, time-bound) states**:

    state (X, t) ⇒ every step of X executed before time t reaches the
                   current step.

    start:   (current task, ∞)
    expand:  every join into X recorded at τ < t   → (source, ∞)
             the spawn edge                        → (parent(X), spawn_time(X))
    answer:  reachable state (T, t) with a < t     → True

States are memoized by their maximal bound, so each task expands at most
once per distinct bound (bounds are ∞ or a child's spawn time ⇒ O(joins +
ancestors) per query).  Soundness and completeness need no reference-flow
assumption at all — the timestamps carry exactly the prefix information the
paper's interval/merge machinery approximates.

The cost is real: no union-find collapsing, no O(1) containment fast path —
``bench_detector_comparison.py`` measures the gap, which is this module's
second purpose: quantifying what the paper's discipline assumption buys.

:class:`ExactDetector` reuses the unmodified shadow-memory policies
(Algorithms 8-9) with ``(task, access_time)`` composite keys, so the two
detectors differ *only* in the reachability primitive.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.events import ExecutionObserver
from repro.core.races import AccessKind, Race, RaceReport, ReportPolicy
from repro.core.shadow import ShadowMemory
from repro.runtime.errors import RaceError

__all__ = ["ExactTaskReachability", "ExactDetector"]

_INF = float("inf")


class ExactTaskReachability:
    """Timestamped task-level reachability with prefix bounds."""

    def __init__(self) -> None:
        self._time = 0
        self._parent: Dict[int, Optional[int]] = {}
        self._spawn_time: Dict[int, int] = {}
        self._is_future: Dict[int, bool] = {}
        #: joins INTO each task: list of (time, source tid)
        self._joins_in: Dict[int, List[Tuple[int, int]]] = {}
        self.num_queries = 0
        self.num_expansions = 0

    # ------------------------------------------------------------------ #
    # Construction (driven by the observer)                              #
    # ------------------------------------------------------------------ #
    def tick(self) -> int:
        """Advance and return the global event clock."""
        self._time += 1
        return self._time

    def add_task(
        self, tid: int, parent: Optional[int], is_future: bool
    ) -> None:
        self._parent[tid] = parent
        self._spawn_time[tid] = self.tick()
        self._is_future[tid] = is_future
        self._joins_in[tid] = []

    def record_join(self, consumer: int, producer: int) -> None:
        """A join edge from ``producer``'s end into ``consumer`` now."""
        self._joins_in[consumer].append((self.tick(), producer))

    def is_future(self, tid: int) -> bool:
        return self._is_future[tid]

    # ------------------------------------------------------------------ #
    # The query                                                          #
    # ------------------------------------------------------------------ #
    def access_precedes(
        self, prev_tid: int, prev_time: int, cur_tid: int
    ) -> bool:
        """Does the access performed by ``prev_tid`` at ``prev_time``
        precede the *current* step of ``cur_tid`` (executing now)?"""
        self.num_queries += 1
        if prev_tid == cur_tid:
            return True  # program order
        best: Dict[int, float] = {}
        stack: List[Tuple[int, float]] = [(cur_tid, _INF)]
        joins_in = self._joins_in
        parent = self._parent
        spawn_time = self._spawn_time
        while stack:
            x, t = stack.pop()
            seen = best.get(x)
            if seen is not None and seen >= t:
                continue
            best[x] = t
            self.num_expansions += 1
            if x == prev_tid and prev_time < t:
                return True
            for tau, src in joins_in[x]:
                if tau < t:
                    stack.append((src, _INF))
            p = parent[x]
            if p is not None:
                stack.append((p, spawn_time[x]))
        return False


class ExactDetector(ExecutionObserver):
    """Determinacy race detector exact under arbitrary handle flows.

    Same observer surface and shadow policies as
    :class:`~repro.core.detector.DeterminacyRaceDetector`; only the
    reachability primitive differs.  Shadow entries are
    ``(tid, access_time)`` pairs so each access carries its position within
    its task — the refinement the task-level DTRG cannot express.
    """

    def __init__(
        self,
        policy: ReportPolicy | str = ReportPolicy.COLLECT,
        *,
        dedupe: bool = True,
    ) -> None:
        if isinstance(policy, str):
            policy = ReportPolicy(policy)
        self.policy = policy
        self.report = RaceReport(dedupe=dedupe)
        self.reach = ExactTaskReachability()
        # Lemma 4's single-async-reader optimization needs care: any
        # retained reader that a later get() can order away fails to
        # witness races for the readers it displaced.  That happens under
        # wild flow (a wild get() of a future spawned *inside* an async A
        # orders A's prefix with the getter — shrunk counterexample in
        # tests/core/test_exact.py), and even under scoped flow when the
        # retained reader is future-covered (inside a future's spawn
        # subtree — tests/corpus/dtrg_future_covered_reader.json).  The
        # DTRG detector compensates with its future-covered predicate;
        # the exact detector simply retains every parallel reader.
        self.shadow = ShadowMemory(
            precede=self._precede_keys,
            is_future=lambda key: True,
            report=self._report_race,
        )
        self._names: Dict[int, str] = {}

    # ------------------------------------------------------------------ #
    def on_init(self, main) -> None:
        self._names[main.tid] = main.name
        self.reach.add_task(main.tid, parent=None, is_future=False)

    def on_task_create(self, parent, child) -> None:
        self._names[child.tid] = child.name
        self.reach.add_task(child.tid, parent.tid, child.is_future)

    def on_get(self, consumer, producer) -> None:
        self.reach.record_join(consumer.tid, producer.tid)

    def on_finish_end(self, scope) -> None:
        owner = scope.owner.tid
        for task in scope.joins:
            self.reach.record_join(owner, task.tid)

    def on_read(self, task, loc: Hashable) -> None:
        self.shadow.read((task.tid, self.reach.tick()), loc)

    def on_write(self, task, loc: Hashable) -> None:
        self.shadow.write((task.tid, self.reach.tick()), loc)

    # ------------------------------------------------------------------ #
    @property
    def races(self):
        return self.report.races

    @property
    def racy_locations(self):
        return self.report.racy_locations

    def _precede_keys(self, prev_key, cur_key) -> bool:
        # cur_key is the key of the access being checked right now, so its
        # task is the currently executing task.
        return self.reach.access_precedes(
            prev_key[0], prev_key[1], cur_key[0]
        )

    def _report_race(self, kind: str, prev_key, cur_key, loc) -> None:
        race = Race(
            loc=loc,
            kind=AccessKind(kind),
            prev_task=prev_key[0],
            current_task=cur_key[0],
            prev_name=self._names.get(prev_key[0], ""),
            current_name=self._names.get(cur_key[0], ""),
        )
        if self.report.add(race) and self.policy is ReportPolicy.RAISE:
            raise RaceError(race)
