"""Schedule-robust online race detection for concurrent runtimes.

The paper's detector (:class:`~repro.core.detector.DeterminacyRaceDetector`)
is proven sound and precise **for the serial depth-first elision**
(Theorem 2): three of its ingredients silently assume that event order —

* interval-label containment answers "spawn-tree ancestor" only when
  terminations arrive in LIFO order relative to spawns;
* the shadow memory's single-plain-async-reader retention (Lemma 4) keeps
  the *leftmost-in-DFS* reader as the representative;
* the vector-clock backend's live-task branch walks spawn-tree ancestry,
  which is only equivalent to happens-before when an ancestor's
  post-spawn accesses cannot yet have happened.

Under a real parallel schedule (``ThreadRuntime``) or a cooperative
non-DFS interleaving (``AsyncioRuntime``) all three break.
:class:`ParallelRaceDetector` therefore checks accesses with the one
PRECEDE representation that is exact under *any* linearization of the
computation graph's happens-before order: future-aware vector clocks at
**access-stamp granularity** (the FastTrack idea specialized to
determinacy races — every access is recorded as the pair
``(task, stamp)`` where ``stamp`` is the task's own clock component at
access time, and a later access by task ``b`` is ordered after it iff
``clock(b)[task] >= stamp``).

Clock algebra (identical to :class:`~repro.core.vc_backend.VectorClockBackend`,
whose serial-only live-task shortcut is exactly what this module replaces):

* spawn: the child inherits a copy of the parent's clock plus its own
  fresh component; the parent then ticks (post-spawn parent work is
  unordered with the child);
* task end: the task's clock is frozen — its final value summarizes
  everything that happened before the task's end;
* ``get`` / finish-end join: the consumer merges the *frozen* producer
  clock component-wise and ticks.

Why this stays exact concurrently (ALGORITHM.md §15 gives the proof
sketch):

* **Precision** — ``covered(a, s, b)`` compares against stamps, never
  against "is ``a`` still alive", so a report is issued only when the two
  accesses are truly unordered in the graph, regardless of the real-time
  order the schedule produced.
* **Location-level soundness** — the shadow cell keeps the last writer
  and the latest read stamp of *every* reader task since that writer.
  A write retires all of them, but anything it retires is either ordered
  before it (by ``covered``) or has already been reported as a race on
  this location; by transitivity of happens-before, a later access
  parallel to a retired ordered access is also parallel to the retiring
  write still stored in the cell.  Hence the *first* race on each
  location is always caught — and ``racy_locations`` (the quantity the
  brute-force oracle pins, see :mod:`repro.core.races`) is exact.

Thread-safety contract (the runtime side of ALGORITHM.md §15):

* structural hooks (init/spawn/end/get/finish) must be serialized by the
  caller — ``ThreadRuntime`` dispatches them under its exclusive
  structural lock, the serial/asyncio runtimes are single-threaded;
* access hooks (read/write) may run concurrently for different
  locations, but must be serialized *per location* — ``ThreadRuntime``'s
  striped per-cell locks provide that.  An access by task ``t`` reads
  only ``t``'s own live clock (mutated exclusively by the thread running
  ``t``), frozen producer clocks, and immutable stamps in the cell, so
  no structural lock is needed on the access path;
* the race report is shared across cells and guarded by an internal
  lock here.

``mutation_epoch`` counts structural mutations under the same contract
as :mod:`repro.core.backend` ("epoch unchanged ⇒ no structural mutation
happened between the two reads"), which makes the per-cell same-access
fast path below well-defined even mid-schedule.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.events import ExecutionObserver
from repro.core.races import AccessKind, Race, RaceReport, ReportPolicy
from repro.runtime.errors import RaceError

__all__ = ["ParallelRaceDetector"]

_KIND = {
    "read-write": AccessKind.READ_WRITE,
    "write-write": AccessKind.WRITE_WRITE,
    "write-read": AccessKind.WRITE_READ,
}


class _Cell:
    """Shadow state of one shared location.

    ``writer`` is the last write as ``(tid, stamp)``; ``readers`` maps
    each reader tid to the *latest* stamp it read with since the last
    write (a later stamp covers the earlier ones: the clock component is
    monotone, so ``covered`` on the latest read implies ``covered`` on
    all earlier reads by that task — and an uncovered earlier read would
    report the same ``(loc, pair, kind)`` the dedup collapses anyway).
    """

    __slots__ = ("writer", "readers")

    def __init__(self) -> None:
        self.writer: Optional[Tuple[int, int]] = None
        self.readers: Dict[int, int] = {}


class ParallelRaceDetector(ExecutionObserver):
    """Online determinacy race detector safe under any schedule.

    Plugs into any :class:`~repro.runtime.base.RuntimeBase` — the serial
    elision (where it is an alternative engine, differentially fuzzed
    against the DTRG), ``ThreadRuntime`` (where it is the *only* engine
    whose answers are well-defined) and ``AsyncioRuntime``.

    Parameters
    ----------
    policy:
        :attr:`ReportPolicy.COLLECT` (default) or
        :attr:`ReportPolicy.RAISE` (raise
        :class:`~repro.runtime.errors.RaceError` at the first race — on a
        threaded runtime the error surfaces on the accessing worker and
        propagates out of ``run``).
    dedupe:
        Collapse repeated reports of the same (location, pair, kind).
    """

    #: Stripe fan-out for :attr:`stripe_counts`; matches ThreadRuntime's
    #: striped per-location lock count so the two tallies line up.
    NUM_STRIPES = 64

    def __init__(
        self,
        policy: ReportPolicy | str = ReportPolicy.COLLECT,
        *,
        dedupe: bool = True,
    ) -> None:
        if isinstance(policy, str):
            policy = ReportPolicy(policy)
        self.policy = policy
        self.report = RaceReport(dedupe=dedupe)
        #: tid -> live vector clock (mutated only by the thread currently
        #: running the task; see the module thread-safety contract).
        self._clocks: Dict[int, Dict[int, int]] = {}
        #: tid -> frozen clock, written once at task end.
        self._final: Dict[int, Dict[int, int]] = {}
        self._names: Dict[int, str] = {}
        self._cells: Dict[Hashable, _Cell] = {}
        #: Guards _cells insertion and the report (cells for *different*
        #: locations are mutated concurrently under the runtime's striped
        #: per-location locks; this lock covers the cross-location shared
        #: pieces only, so it is never contended on the per-cell state).
        self._lock = threading.Lock()
        #: Structural mutation counter (core/backend.py epoch contract).
        self.mutation_epoch = 0
        self.num_accesses = 0
        #: Per-stripe access tallies, indexed like ThreadRuntime's
        #: striped per-location locks (``hash(loc) % NUM_STRIPES``) —
        #: live telemetry reads these to show how access traffic spreads
        #: over the lock stripes.  Increments happen while the caller
        #: holds the matching stripe lock, so same-stripe updates never
        #: collide; reads are lock-free and therefore approximate.
        self.stripe_counts = [0] * self.NUM_STRIPES

    # ------------------------------------------------------------------ #
    # Structural hooks (serialized by the runtime)                       #
    # ------------------------------------------------------------------ #
    def on_init(self, main) -> None:
        self._names[main.tid] = main.name
        self._clocks[main.tid] = {main.tid: 1}
        self.mutation_epoch += 1

    def on_task_create(self, parent, child) -> None:
        self._names[child.tid] = child.name
        pclock = self._clocks[parent.tid]
        clock = dict(pclock)
        clock[child.tid] = 1
        self._clocks[child.tid] = clock
        # Parent's post-spawn steps are unordered with the child: tick.
        pclock[parent.tid] += 1
        self.mutation_epoch += 1

    def on_task_end(self, task) -> None:
        # Freeze by copy: the live dict keeps servicing in-flight
        # covered() reads by the owner thread without aliasing the
        # frozen summary that joiners will merge.
        self._final[task.tid] = dict(self._clocks[task.tid])
        self.mutation_epoch += 1

    def on_get(self, consumer, producer) -> None:
        self._join(consumer.tid, producer.tid)

    def on_finish_end(self, scope) -> None:
        owner = scope.owner.tid
        for task in scope.joins:
            self._join(owner, task.tid)

    def _join(self, dst: int, src: int) -> None:
        frozen = self._final.get(src)
        if frozen is None:
            raise RuntimeError(
                f"join of task {src} before its task-end event: the "
                "runtime must dispatch on_task_end before any consumer "
                "observes the join (RuntimeBase ordering contract)"
            )
        clock = self._clocks[dst]
        for tid, stamp in frozen.items():
            if clock.get(tid, 0) < stamp:
                clock[tid] = stamp
        clock[dst] += 1
        self.mutation_epoch += 1

    # ------------------------------------------------------------------ #
    # Access hooks (serialized per location by the runtime)              #
    # ------------------------------------------------------------------ #
    def _cell(self, loc: Hashable) -> _Cell:
        cell = self._cells.get(loc)
        if cell is None:
            # Double-checked under the lock: two tasks touching the same
            # new location race to create its cell; same loc ⇒ same
            # stripe lock in ThreadRuntime, so this is belt-and-braces
            # for callers with weaker per-location serialization.
            with self._lock:
                cell = self._cells.get(loc)
                if cell is None:
                    cell = _Cell()
                    self._cells[loc] = cell
        return cell

    def on_write(self, task, loc: Hashable) -> None:
        tid = task.tid
        clock = self._clocks[tid]
        stamp = clock[tid]
        cell = self._cell(loc)
        self.num_accesses += 1
        self.stripe_counts[hash(loc) % self.NUM_STRIPES] += 1
        w = cell.writer
        if w is not None and w == (tid, stamp) and not cell.readers:
            return  # pure replay of this task's own stored write
        for r_tid, r_stamp in cell.readers.items():
            if r_tid != tid and clock.get(r_tid, 0) < r_stamp:
                self._report_race("read-write", r_tid, tid, loc)
        if w is not None and w[0] != tid and clock.get(w[0], 0) < w[1]:
            self._report_race("write-write", w[0], tid, loc)
        cell.writer = (tid, stamp)
        # Retired readers are either ordered before this write (covered)
        # or already reported; either way the stored writer now witnesses
        # every future conflict they could have witnessed (hb transitivity
        # — see the module docstring soundness argument).
        if cell.readers:
            cell.readers = {}

    def on_read(self, task, loc: Hashable) -> None:
        tid = task.tid
        clock = self._clocks[tid]
        stamp = clock[tid]
        cell = self._cell(loc)
        self.num_accesses += 1
        self.stripe_counts[hash(loc) % self.NUM_STRIPES] += 1
        w = cell.writer
        if w is not None and w[0] != tid and clock.get(w[0], 0) < w[1]:
            self._report_race("write-read", w[0], tid, loc)
        prev = cell.readers.get(tid, 0)
        if stamp > prev:
            cell.readers[tid] = stamp

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #
    def precede(self, a_tid: int, b_tid: int) -> bool:
        """Task-granularity PRECEDE (end of ``a`` before current step of
        ``b``) — exposed for tests; requires ``a`` to have ended."""
        if a_tid == b_tid:
            return True
        frozen = self._final.get(a_tid)
        if frozen is None:
            raise RuntimeError(
                f"precede({a_tid}, {b_tid}) while {a_tid} is live: "
                "task-granularity queries are only defined for ended "
                "tasks under a parallel schedule"
            )
        return self._clocks[b_tid].get(a_tid, 0) >= frozen[a_tid]

    @property
    def races(self):
        return self.report.races

    @property
    def racy_locations(self):
        return self.report.racy_locations

    @property
    def perf_stats(self) -> dict:
        return {
            "mutation_epoch": self.mutation_epoch,
            "num_accesses": self.num_accesses,
            "num_locations": len(self._cells),
            "num_tasks": len(self._clocks),
        }

    # ------------------------------------------------------------------ #
    def _report_race(self, kind: str, prev: int, cur: int, loc) -> None:
        race = Race(
            loc=loc,
            kind=_KIND[kind],
            prev_task=prev,
            current_task=cur,
            prev_name=self._names.get(prev, ""),
            current_name=self._names.get(cur, ""),
        )
        with self._lock:
            added = self.report.add(race)
        if added and self.policy is ReportPolicy.RAISE:
            raise RaceError(race)
