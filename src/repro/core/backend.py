"""The ``PrecedeBackend`` protocol — pluggable reachability engines.

The detector (Algorithms 1–9) never looks inside the reachability
structure: it forwards structural events and asks one question,
``precede(a, b)``.  Everything else — disjoint sets, interval labels,
non-tree edges, DePa labels, vector clocks — is an implementation
choice.  This module names that seam so alternative engines can be
raced against the paper's DTRG behind ``DeterminacyRaceDetector
(engine=...)`` (ROADMAP open item 2).

Engines
-------
``object``  (alias ``dtrg``)
    :class:`repro.core.reachability.DynamicTaskReachabilityGraph` — the
    paper's Algorithms 1–10.  The reference implementation; the only
    engine with ablation switches, observability and witnesses.
``array``
    :class:`repro.core.array_dtrg.ArrayDTRG` — the same algorithms over
    flat ``array('q')`` columns (ALGORITHM.md §13).
``depa``
    :class:`repro.core.depa.DePaBackend` — DePa-style dag-path
    order-maintenance labels (Westrick et al., arXiv:2204.14168) for
    the **fork-join fragment**.  O(depth) comparisons, no per-pair
    state.  Declines future ``get`` edges with
    :class:`~repro.runtime.errors.UnsupportedConstructError` — the
    documented fallback, never a silent wrong answer (ALGORITHM.md
    §14.2).
``vc``
    :class:`repro.core.vc_backend.VectorClockBackend` — future-aware
    per-task vector clocks (cf. Kumar et al., arXiv:2112.04352),
    promoted from ``baselines/vector_clock.py`` to a full online engine
    that joins producer clocks on ``get`` (ALGORITHM.md §14.3).

The calling contract
--------------------
``precede(a, b)`` is only guaranteed meaningful while ``b`` is the
currently executing task of the serial depth-first run (that is how the
shadow memory calls it: the current access's task is always ``b``).
Post-mortem all-pairs queries are engine-specific — after the final
end-finish merges the DTRG's answer degenerates to "same set" — so the
equivalence sweeps (``tests/properties/test_backend_equivalence.py``)
query at event boundaries with ``b`` = the current task.

Protocol surface
----------------
Structural mutators (each must bump ``mutation_epoch``; the shadow
memory's epoch memo assumes *epoch unchanged ⇒ no mutation happened*):

- ``add_root(key, *, name="")`` — Algorithm 1, the main task.
- ``add_task(parent_key, child_key, *, is_future=False, name="")`` —
  Algorithm 2, a spawn.
- ``on_terminate(key)`` — Algorithm 3, the task's last step retired.
- ``record_join(consumer_key, producer_key)`` — Algorithm 4, a future
  ``get``.  May raise ``UnsupportedConstructError`` (DePa does).
- ``merge(ancestor_key, descendant_key)`` — Algorithm 6/7, an
  end-finish join of one task into its IEF owner's set.
- ``begin_finish(owner_key)`` / ``end_finish(owner_key)`` — Algorithm
  5/6 scope boundaries.  The DTRG engines need neither (their join
  information arrives via ``merge``) and implement them as no-ops that
  do **not** bump the epoch, preserving their counter contract; label
  engines like DePa push/pop scope state here.

Query + invariant stats:

- ``precede(a_key, b_key) -> bool`` — must count in
  ``num_precede_queries``.
- ``mutation_epoch`` / ``num_precede_queries`` — ints, monotone.
- ``cache`` — a :class:`repro.core.precede_cache.PrecedeCache` or
  ``None`` (engines without the shared cache report ``cache_* = 0``).

Only the *verdict stream* is comparable across engines: given the same
event stream, every engine must answer every ``precede`` call
identically, which makes race lists bit-identical.  Counter values
(``mutation_epoch``, query counts) are per-engine invariants — each
engine is deterministic, but engines legitimately differ from one
another (DePa has no merges to count; VC ticks per join).
"""

from __future__ import annotations

from typing import Hashable, Protocol, runtime_checkable

__all__ = ["PrecedeBackend", "ENGINE_ALIASES", "ENGINES", "resolve_engine"]


@runtime_checkable
class PrecedeBackend(Protocol):
    """Structural typing for reachability engines (see module docstring)."""

    mutation_epoch: int
    num_precede_queries: int

    def add_root(self, key: Hashable, *, name: str = "") -> None: ...

    def add_task(
        self,
        parent_key: Hashable,
        child_key: Hashable,
        *,
        is_future: bool = False,
        name: str = "",
    ) -> None: ...

    def on_terminate(self, key: Hashable) -> None: ...

    def record_join(
        self, consumer_key: Hashable, producer_key: Hashable
    ) -> None: ...

    def merge(
        self, ancestor_key: Hashable, descendant_key: Hashable
    ) -> None: ...

    def begin_finish(self, owner_key: Hashable) -> None: ...

    def end_finish(self, owner_key: Hashable) -> None: ...

    def precede(self, a_key: Hashable, b_key: Hashable) -> bool: ...


#: Engine names accepted by ``DeterminacyRaceDetector(engine=...)``.
ENGINES = ("object", "array", "depa", "vc")

#: ``dtrg`` is the user-facing name for the reference object engine
#: (matches the fuzzer/bench row names).
ENGINE_ALIASES = {"dtrg": "object"}


def resolve_engine(engine: str) -> str:
    """Normalize an engine name, raising ``ValueError`` on unknowns."""
    engine = ENGINE_ALIASES.get(engine, engine)
    if engine not in ENGINES:
        raise ValueError(
            f"unknown DTRG engine {engine!r}; choose from "
            f"{ENGINES + tuple(ENGINE_ALIASES)}"
        )
    return engine
