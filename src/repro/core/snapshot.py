"""Frozen array-backed snapshot of a finished DTRG.

The live :class:`~repro.core.reachability.DynamicTaskReachabilityGraph` is
an object graph — one :class:`TaskNode` per task, :class:`SetData` records
hanging off union-find roots, Python lists of node pointers for the
non-tree edges.  That layout is ideal for on-the-fly construction but
wrong for the two-phase parallel checker (:mod:`repro.core.parallel_check`):
pickling it walks millions of objects, and queries chase pointers.

:class:`DTRGSnapshot` compacts the *final* state of a finished graph into
flat ``array('q')`` columns under a dense task remap:

=============  ==========================================================
column         meaning (indexed by dense task id unless noted)
=============  ==========================================================
``pre``        task preorder value (immutable once assigned)
``post``       task postorder value (final, or the temporary left in a
               partial trace — containment stays ancestor-correct either
               way, see :mod:`repro.core.labels`)
``parent``     spawn-tree parent index, ``-1`` for the root
``is_future``  1 for future tasks (bytes, not ``'q'``)
``rep``        union-find representative index (path-compressed away:
               the frozen partition needs no ``find``)
``label_pre``  set label, meaningful at ``rep`` slots: the pre/post of
``label_post``   the set's root-most member's interval
``max_pre``    largest member preorder of the set (at ``rep`` slots)
``lsa``        lowest-significant-ancestor *task* index (at ``rep``
               slots), ``-1`` for none
``nt_start``   CSR row pointers (length n+1) into ``nt_prod``
``nt_prod``    non-tree predecessor task indices, per-set insertion order
=============  ==========================================================

:meth:`precede` reimplements Algorithm 10 over the columns — same level-0
checks, preorder prune, memoized backward VISIT search and LSA-chain walk
as the live graph's default strategy — and is *allocation-free in steady
state*: the visited set is an integer-stamp array reused across queries
(bumping one query id instead of clearing), and the frozen partition
replaces every ``find`` with one indexed load.  Verdict bit-equivalence
against the live graph on all task pairs is property-tested over the fuzz
corpus (``tests/properties/test_parallel_equivalence.py``).

The snapshot reflects the graph's **final** state only.  Replaying shadow
checks against it is *not* equivalent to online detection — end-finish
merges performed after an access can order task pairs that were unordered
when the access happened (races would be masked).  The parallel checker
therefore pairs the snapshot's immutable columns (``pre``/``post``,
identity, future flags) with an epoch-stamped mutation log
(:class:`repro.core.parallel_check.StructureLog`) that lets each worker
advance a union-find replica to the exact epoch of every access.
"""

from __future__ import annotations

import sys
from array import array
from typing import Hashable, List

__all__ = ["DTRGSnapshot"]

_ARRAY_COLUMNS = (
    "pre", "post", "parent", "rep",
    "label_pre", "label_post", "max_pre", "lsa",
    "nt_start", "nt_prod",
)


class DTRGSnapshot:
    """Immutable flat-column view of a finished DTRG (see module docstring).

    Build with :meth:`freeze`; query with :meth:`precede` (task keys, like
    the live graph) or :meth:`precede_idx` (dense indices, the parallel
    workers' entry point for static columns).  Pickles cheaply: the payload
    is the raw array buffers plus the key list (the key→index map is
    rebuilt on unpickle).
    """

    __slots__ = _ARRAY_COLUMNS + (
        "keys", "index", "is_future",
        "_stamp", "_qid", "num_precede_queries", "num_visits",
    )

    def __init__(self) -> None:  # populated by freeze() / __setstate__
        self.keys: List[Hashable] = []
        self.index = {}
        self.is_future = bytearray()
        for col in _ARRAY_COLUMNS:
            setattr(self, col, array("q"))
        self._stamp = array("q")
        self._qid = 0
        self.num_precede_queries = 0
        self.num_visits = 0

    # ------------------------------------------------------------------ #
    # Construction                                                       #
    # ------------------------------------------------------------------ #
    @classmethod
    def freeze(cls, dtrg) -> "DTRGSnapshot":
        """Compact ``dtrg`` (a finished ``DynamicTaskReachabilityGraph``)
        into a snapshot.

        O(n + e) with one ``find`` per task; the source graph is left
        untouched (freezing bumps no counters and performs no unions —
        only path reads).  The snapshot mirrors the default query strategy
        (intervals + memoized VISIT + LSA); verdicts are strategy-invariant,
        so freezing an ablated graph still reproduces its verdicts.
        """
        state_fn = getattr(dtrg, "snapshot_state", None)
        if state_fn is not None:
            # ArrayDTRG freeze fast path: the live graph already stores the
            # columns, so freezing is a wholesale buffer copy (plus the
            # rep/CSR computation done by snapshot_state itself).
            return cls._from_state(state_fn())
        snap = cls()
        nodes = list(dtrg._nodes.values())  # dict preserves creation order
        for node in nodes:
            if not node.label.final:
                raise ValueError(
                    f"cannot freeze: task {node.key!r} has not terminated "
                    "(temporary postorder) — the snapshot reflects the "
                    "final state of a finished graph only"
                )
        n = len(nodes)
        index = {node.key: i for i, node in enumerate(nodes)}
        snap.keys = [node.key for node in nodes]
        snap.index = index
        snap.is_future = bytearray(
            1 if node.is_future else 0 for node in nodes
        )
        snap.pre = array("q", (node.label.pre for node in nodes))
        snap.post = array("q", (node.label.post for node in nodes))
        snap.parent = array(
            "q",
            (
                index[node.parent.key] if node.parent is not None else -1
                for node in nodes
            ),
        )
        sets = dtrg._sets
        rep = array("q", bytes(8 * n))
        label_pre = array("q", bytes(8 * n))
        label_post = array("q", bytes(8 * n))
        max_pre = array("q", bytes(8 * n))
        lsa = array("q", [-1]) * n
        nt_lists: List[list] = [()] * n
        seen_roots = {}
        for i, node in enumerate(nodes):
            root, data = sets.root_and_metadata(node)
            r = seen_roots.get(root.key)
            if r is None:
                r = index[root.key]
                seen_roots[root.key] = r
                label_pre[r] = data.label.pre
                label_post[r] = data.label.post
                max_pre[r] = data.max_pre
                lsa[r] = index[data.lsa.key] if data.lsa is not None else -1
                nt_lists[r] = [index[p.key] for p in data.nt]
            rep[i] = r
        nt_start = array("q", bytes(8 * (n + 1)))
        total = 0
        for i in range(n):
            nt_start[i] = total
            total += len(nt_lists[i])
        nt_start[n] = total
        nt_prod = array("q", bytes(8 * total))
        pos = 0
        for i in range(n):
            for p in nt_lists[i]:
                nt_prod[pos] = p
                pos += 1
        snap.rep = rep
        snap.label_pre = label_pre
        snap.label_post = label_post
        snap.max_pre = max_pre
        snap.lsa = lsa
        snap.nt_start = nt_start
        snap.nt_prod = nt_prod
        snap._stamp = array("q", bytes(8 * n))
        snap._qid = 0
        return snap

    @classmethod
    def _from_state(cls, state: dict) -> "DTRGSnapshot":
        """Build a snapshot directly from pre-computed columns (the
        :meth:`repro.core.array_dtrg.ArrayDTRG.snapshot_state` fast path).

        Column conventions differ harmlessly from the object-graph freeze:
        ``label_*``/``max_pre``/``lsa`` carry stale per-task values at
        non-``rep`` slots instead of zeros/-1 — every query indexes those
        columns at ``rep`` slots only, so verdicts and ``num_visits`` are
        unaffected (property-tested in ``test_array_equivalence``).
        """
        snap = cls()
        for col in _ARRAY_COLUMNS:
            setattr(snap, col, state[col])
        snap.keys = state["keys"]
        snap.is_future = state["is_future"]
        snap.index = {key: i for i, key in enumerate(snap.keys)}
        snap._stamp = array("q", bytes(8 * len(snap.keys)))
        return snap

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.keys)

    @property
    def num_non_tree_edges(self) -> int:
        return len(self.nt_prod)

    @property
    def nbytes(self) -> int:
        """Bytes held by the numeric columns (excludes keys/index)."""
        total = len(self.is_future)
        for col in _ARRAY_COLUMNS:
            a = getattr(self, col)
            total += len(a) * a.itemsize
        return total

    # ------------------------------------------------------------------ #
    # Pickling (ship to spawn-method workers)                            #
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        state = {col: getattr(self, col) for col in _ARRAY_COLUMNS}
        state["keys"] = self.keys
        state["is_future"] = self.is_future
        return state

    def __setstate__(self, state) -> None:
        for col in _ARRAY_COLUMNS:
            setattr(self, col, state[col])
        self.keys = state["keys"]
        self.is_future = state["is_future"]
        self.index = {key: i for i, key in enumerate(self.keys)}
        self._stamp = array("q", bytes(8 * len(self.keys)))
        self._qid = 0
        self.num_precede_queries = 0
        self.num_visits = 0

    # ------------------------------------------------------------------ #
    # Queries (Algorithm 10 over the final state)                        #
    # ------------------------------------------------------------------ #
    def precede(self, a_key: Hashable, b_key: Hashable) -> bool:
        """``PRECEDE(A, B)`` on the frozen final state, by task key."""
        return self.precede_idx(self.index[a_key], self.index[b_key])

    def precede_idx(self, ia: int, ib: int) -> bool:
        """``PRECEDE`` by dense index — the allocation-free hot path."""
        self.num_precede_queries += 1
        if ia == ib:
            return True
        rep = self.rep
        ra, rb = rep[ia], rep[ib]
        if ra == rb:
            return True
        la_pre = self.label_pre[ra]
        la_post = self.label_post[ra]
        if la_pre <= self.label_pre[rb] and self.label_post[rb] <= la_post:
            return True
        if la_pre > self.max_pre[rb]:
            return False
        if self.nt_start[rb] == self.nt_start[rb + 1] and self.lsa[rb] < 0:
            return False
        self._qid += 1
        qid = self._qid
        self._stamp[rb] = qid
        self.num_visits += 1
        return self._explore(ra, la_pre, la_post, rb, qid)

    def _visit(
        self, ra: int, la_pre: int, la_post: int, b_idx: int, qid: int
    ) -> bool:
        rb = self.rep[b_idx]
        if rb == ra:
            return True
        if la_pre <= self.label_pre[rb] and self.label_post[rb] <= la_post:
            return True
        if la_pre > self.max_pre[rb]:
            return False
        stamp = self._stamp
        if stamp[rb] == qid:
            return False
        stamp[rb] = qid
        self.num_visits += 1
        return self._explore(ra, la_pre, la_post, rb, qid)

    def _explore(
        self, ra: int, la_pre: int, la_post: int, rb: int, qid: int
    ) -> bool:
        nt_start, nt_prod = self.nt_start, self.nt_prod
        visit = self._visit
        for i in range(nt_start[rb], nt_start[rb + 1]):
            if visit(ra, la_pre, la_post, nt_prod[i], qid):
                return True
        stamp, lsa, rep = self._stamp, self.lsa, self.rep
        anc = lsa[rb]
        while anc >= 0:
            r = rep[anc]
            if stamp[r] != qid:
                stamp[r] = qid
                self.num_visits += 1
                for i in range(nt_start[r], nt_start[r + 1]):
                    if visit(ra, la_pre, la_post, nt_prod[i], qid):
                        return True
            anc = lsa[r]
        return False

    def is_ancestor_idx(self, ia: int, ib: int) -> bool:
        """Spawn-tree ancestor-or-self test via task-level intervals."""
        return (
            self.pre[ia] <= self.pre[ib] and self.post[ib] <= self.post[ia]
        )


if sys.maxsize < 2**63 - 1:  # pragma: no cover - 32-bit guard
    raise ImportError("DTRGSnapshot requires 64-bit signed array('q') slots")
