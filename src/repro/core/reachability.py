"""The dynamic task reachability graph (DTRG) — Section 4.1 + Algorithm 10.

The DTRG answers, on the fly, the query at the core of determinacy race
detection: *must every completed step of task A precede the currently
executing step of task B?*  It is the 5-tuple ``R = (N, D, L, P, A)`` of
Definition 1 (Section 4.1):

* ``N`` — one node per task (:class:`TaskNode`);
* ``D`` — a partition of nodes into disjoint sets; two tasks share a set iff
  they are connected by tree-join + continue edges
  (:class:`repro.core.disjoint_set.DisjointSets`);
* ``L`` — interval labels from the spawn tree's depth-first numbering, one
  per set, equal to the label of the set's root-most task
  (:class:`repro.core.labels.IntervalLabel`);
* ``P`` — per set, the incoming *non-tree* join edges (``nt`` lists);
* ``A`` — per set, the *lowest significant ancestor* (LSA): the nearest
  spawn-tree ancestor whose set has at least one incoming non-tree edge.

:meth:`DynamicTaskReachabilityGraph.precede` implements the paper's
``PRECEDE``/``VISIT`` routine (Algorithm 10, reconstructed from the prose —
see DESIGN.md §3): same set → true; set-interval containment → true;
preorder pruning — the paper prunes when ``pre(A) > pre(B)`` because a
non-tree edge's source predates its sink, but after tree-join merges a set's
*label* carries the root-most (smallest) preorder while its non-tree edges
may belong to later members, so we prune against the set's ``max_pre``
(largest member preorder) to stay sound; otherwise search backwards through
the non-tree predecessors of B's set and of every significant ancestor of B,
memoized so each set is expanded at most once per query (needed for the
Theorem 1 bound).

Ablation switches (used by ``benchmarks/bench_ablations.py``):

* ``use_lsa=False`` — walk *every* spawn-tree ancestor instead of hopping
  through the significant-ancestor chain;
* ``memoize_visit=False`` — drop the per-query visited set;
* ``use_intervals=False`` — answer ancestor queries by chasing parent
  pointers instead of O(1) interval containment;
* ``cache_precede=False`` — disable the epoch-versioned
  :class:`repro.core.precede_cache.PrecedeCache` that memoizes verdicts
  across queries (positive entries permanent by monotonicity, negative
  entries valid for one mutation epoch).

The graph also maintains :attr:`mutation_epoch`, a counter bumped on every
structural mutation (``add_task``, ``record_join``, ``merge``,
``on_terminate``); the shadow memory uses it for its same-task fast path
and the cache for negative-entry validity.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.core.disjoint_set import DisjointSets
from repro.core.labels import IntervalLabel, LabelAllocator
from repro.core.precede_cache import PrecedeCache

__all__ = ["TaskNode", "SetData", "DynamicTaskReachabilityGraph"]


class TaskNode:
    """DTRG vertex for one task.

    Holds the per-*task* facts (spawn-tree parent, own label, future-ness);
    per-*set* facts live in :class:`SetData` attached to the disjoint set.
    """

    __slots__ = ("key", "parent", "label", "is_future", "name")

    def __init__(
        self,
        key: Hashable,
        parent: Optional["TaskNode"],
        label: IntervalLabel,
        is_future: bool,
        name: str,
    ) -> None:
        self.key = key
        self.parent = parent
        self.label = label
        self.is_future = is_future
        self.name = name

    def __repr__(self) -> str:
        return f"<TaskNode {self.name} {self.label!r}>"


class SetData:
    """Metadata of one disjoint set: its interval label (the label of the
    set's root-most task), the incoming non-tree join edges ``nt``, the
    lowest significant ancestor ``lsa`` (a :class:`TaskNode`, resolved to
    its *current* set at query time via ``find``), and ``max_pre`` — the
    largest preorder value over the set's members.

    ``max_pre`` exists to make the paper's preorder pruning sound after
    merges: a merged set carries the *ancestor's* (small) label, but its
    non-tree edges may have been contributed by later-created members, so
    the prune must compare against the latest member, not the label (see
    DESIGN.md deviation #3; ``tests/core/test_reachability.py`` pins the
    regression)."""

    __slots__ = ("label", "nt", "lsa", "max_pre")

    def __init__(
        self,
        label: IntervalLabel,
        lsa: Optional[TaskNode],
    ) -> None:
        self.label = label
        self.nt: List[TaskNode] = []
        self.lsa = lsa
        self.max_pre = label.pre

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetData(label={self.label!r}, nt={[n.name for n in self.nt]}, "
            f"lsa={self.lsa.name if self.lsa else None})"
        )


class DynamicTaskReachabilityGraph:
    """On-the-fly task-level reachability for non-strict computation graphs.

    The driving detector calls, in serial depth-first execution order:

    * :meth:`add_root` once for the main task (Algorithm 1);
    * :meth:`add_task` at each spawn (Algorithm 2);
    * :meth:`on_terminate` at each task end (Algorithm 3);
    * :meth:`record_join` at each ``get()`` (Algorithm 4);
    * :meth:`merge` for each IEF join at end-finish (Algorithm 6 + 7);
    * :meth:`precede` from the shadow-memory checks (Algorithm 10).
    """

    def __init__(
        self,
        *,
        use_lsa: bool = True,
        memoize_visit: bool = True,
        use_intervals: bool = True,
        cache_precede: bool = True,
    ) -> None:
        self._sets: DisjointSets[TaskNode] = DisjointSets()
        self._labels = LabelAllocator()
        self._nodes: Dict[Hashable, TaskNode] = {}
        self.use_lsa = use_lsa
        self.memoize_visit = memoize_visit
        self.use_intervals = use_intervals
        self.cache = PrecedeCache() if cache_precede else None
        #: Counter bumped on every structural mutation; see module docstring.
        self.mutation_epoch = 0
        # Statistics for complexity tests / benchmarks.
        self.num_precede_queries = 0
        #: VISIT *expansions*: sets added to a query's visited set whose
        #: non-tree frontier is then scanned (including the significant-
        #: ancestor expansions of ``_explore``).  Queries resolved at
        #: level 0 — same set, interval containment, preorder prune, empty
        #: frontier — or from the cache contribute zero, so the counter
        #: measures exactly the backward-search work Theorem 1 bounds.
        #: Without ``memoize_visit`` a set re-expanded after backtracking
        #: counts once per expansion (the cost that ablation measures).
        self.num_visits = 0
        self.num_non_tree_edges = 0
        self.num_tree_merges = 0
        # Observability hook (installed by attach_observability; the
        # default path carries no instrumentation at all).
        self._obs = None

    # ------------------------------------------------------------------ #
    # Construction (Algorithms 1-7)                                      #
    # ------------------------------------------------------------------ #
    def add_root(self, key: Hashable, name: str = "main") -> TaskNode:
        """Register the main task (Algorithm 1)."""
        label = self._labels.on_spawn()
        node = TaskNode(key, parent=None, label=label, is_future=False, name=name)
        self._nodes[key] = node
        self._sets.make_set(node, SetData(label=label, lsa=None))
        return node

    def add_task(
        self,
        parent_key: Hashable,
        child_key: Hashable,
        *,
        is_future: bool,
        name: Optional[str] = None,
    ) -> TaskNode:
        """Register a freshly spawned task (Algorithm 2).

        The child starts in a singleton set labeled with a fresh preorder
        value and a temporary postorder value.  Its LSA is the parent itself
        if the parent's *set* has incoming non-tree edges, else the parent's
        LSA (Algorithm 2 lines 7-11).
        """
        parent = self._nodes[parent_key]
        label = self._labels.on_spawn()
        node = TaskNode(
            child_key,
            parent=parent,
            label=label,
            is_future=is_future,
            name=name or str(child_key),
        )
        self._nodes[child_key] = node
        parent_data: SetData = self._sets.get_metadata(parent)
        lsa = parent if parent_data.nt else parent_data.lsa
        self._sets.make_set(node, SetData(label=label, lsa=lsa))
        self.mutation_epoch += 1
        return node

    def on_terminate(self, key: Hashable) -> None:
        """Install the final postorder value of a terminating task
        (Algorithm 3).

        Bumps the mutation epoch: finalizing a postorder changes interval
        representations (never the ancestor relation they encode), and the
        terminate also hands execution back to the parent task, so cached
        negative verdicts about "the currently executing task" expire."""
        self._labels.on_terminate(self._nodes[key].label)
        self.mutation_epoch += 1

    def record_join(self, consumer_key: Hashable, producer_key: Hashable) -> None:
        """Process ``consumer.get(producer)`` (Algorithm 4).

        If the consumer's set already contains the producer's *parent* —
        i.e. the consumer is an ancestor and every task between it and the
        producer has tree-joined — the join is a tree join and the sets
        merge.  Otherwise it is a non-tree join edge, recorded in the
        consumer set's ``nt`` list.
        """
        consumer = self._nodes[consumer_key]
        producer = self._nodes[producer_key]
        if self._sets.same_set(consumer, producer):
            # Repeated get after an earlier merge: nothing new to record.
            return
        if producer.parent is not None and self._sets.same_set(
            consumer, producer.parent
        ):
            self.merge(consumer_key, producer_key)
        else:
            data: SetData = self._sets.get_metadata(consumer)
            data.nt.append(producer)
            self.num_non_tree_edges += 1
            self.mutation_epoch += 1

    def merge(self, ancestor_key: Hashable, descendant_key: Hashable) -> None:
        """Tree-join merge (Algorithm 7): union the two sets, keeping the
        ancestor set's label and LSA and combining the non-tree lists."""
        a = self._nodes[ancestor_key]
        b = self._nodes[descendant_key]
        data_a: SetData = self._sets.get_metadata(a)
        data_b: SetData = self._sets.get_metadata(b)
        if data_a is data_b:
            return  # already one set (e.g. future both got and IEF-joined)
        data_a.nt.extend(data_b.nt)
        if data_b.max_pre > data_a.max_pre:
            data_a.max_pre = data_b.max_pre
        self._sets.union(a, b)
        self._sets.set_metadata(a, data_a)
        self.num_tree_merges += 1
        self.mutation_epoch += 1

    def begin_finish(self, owner_key: Hashable) -> None:
        """Finish-scope entry (``PrecedeBackend`` protocol hook).

        The DTRG needs no scope state — end-finish ordering arrives as
        one :meth:`merge` per joined task — so both hooks are no-ops and
        deliberately do **not** bump ``mutation_epoch`` (the epoch
        schedule is a pinned cross-engine invariant between the object
        and array engines; see ``docs/ALGORITHM.md`` §14.1)."""

    def end_finish(self, owner_key: Hashable) -> None:
        """Finish-scope exit — no-op, see :meth:`begin_finish`."""

    # ------------------------------------------------------------------ #
    # Observability (repro.obs)                                          #
    # ------------------------------------------------------------------ #
    def attach_observability(self, obs) -> None:
        """Install tracing/metrics instrumentation for ``obs``.

        Null-object protocol: ``None`` or a disabled observability object
        (``obs.enabled`` false) leaves the graph completely untouched —
        the default methods carry no instrumentation, so the disabled
        path costs nothing (asserted by ``bench_obs_overhead.py``).

        When enabled, the query and the four mutators are shadowed by
        instance-attribute bindings of their ``_traced_*`` twins, which
        delegate to the plain implementations and report to ``obs``:
        PRECEDE queries with wall time, VISIT-expansion count and cache
        outcome; mutations as instant events carrying the new epoch.

        Instance-attribute rebinding is construction-time wiring only: a
        concurrent runtime (``ThreadRuntime``) could observe the five
        methods half-swapped, and even serially the pre-attachment events
        would be missing from the trace.  Attaching once the graph holds
        any node raises
        :class:`~repro.runtime.errors.RuntimeStateError`.
        """
        if obs is None or not getattr(obs, "enabled", False):
            return
        if self._nodes:
            from repro.runtime.errors import RuntimeStateError

            raise RuntimeStateError(
                "attach_observability after tasks were registered: attach "
                "hooks at construction time, before the DTRG records any "
                "node (rebinding precede/mutators mid-flight is unsafe "
                "under a concurrent runtime and would leave earlier "
                "events untraced)"
            )
        self._obs = obs
        self.precede = self._traced_precede
        self.add_task = self._traced_add_task
        self.record_join = self._traced_record_join
        self.merge = self._traced_merge
        self.on_terminate = self._traced_on_terminate

    def _traced_precede(self, a_key: Hashable, b_key: Hashable) -> bool:
        from time import perf_counter_ns

        cache = self.cache
        hits0 = cache.hits if cache is not None else 0
        misses0 = cache.misses if cache is not None else 0
        visits0 = self.num_visits
        start = perf_counter_ns()
        verdict = DynamicTaskReachabilityGraph.precede(self, a_key, b_key)
        dur = perf_counter_ns() - start
        expansions = self.num_visits - visits0
        if cache is not None and cache.hits > hits0:
            outcome = "hit"
        elif cache is not None and cache.misses > misses0:
            outcome = "miss"
        elif expansions:
            outcome = "search"  # cache disabled but the query searched
        else:
            outcome = "level0"
        self._obs.on_precede(
            a_key, b_key, verdict, dur, expansions, outcome,
            self.mutation_epoch,
        )
        return verdict

    def _traced_add_task(self, parent_key, child_key, *, is_future, name=None):
        node = DynamicTaskReachabilityGraph.add_task(
            self, parent_key, child_key, is_future=is_future, name=name
        )
        self._obs.on_mutation("add_task", self.mutation_epoch, node.name)
        return node

    def _traced_record_join(self, consumer_key, producer_key):
        DynamicTaskReachabilityGraph.record_join(
            self, consumer_key, producer_key
        )
        self._obs.on_mutation(
            "record_join", self.mutation_epoch,
            f"{consumer_key}<-{producer_key}",
        )

    def _traced_merge(self, ancestor_key, descendant_key):
        DynamicTaskReachabilityGraph.merge(self, ancestor_key, descendant_key)
        self._obs.on_mutation(
            "merge", self.mutation_epoch,
            f"{ancestor_key}+{descendant_key}",
        )

    def _traced_on_terminate(self, key):
        DynamicTaskReachabilityGraph.on_terminate(self, key)
        self._obs.on_mutation("terminate", self.mutation_epoch, str(key))

    # ------------------------------------------------------------------ #
    # Queries (Algorithm 10)                                             #
    # ------------------------------------------------------------------ #
    def precede(self, a_key: Hashable, b_key: Hashable) -> bool:
        """``PRECEDE(A, B)``: must every completed step of task A precede
        the currently executing step of task B?

        ``B`` is expected to be the currently executing task (the detector
        only queries from shadow-memory checks); ``A`` is any previously
        observed task.  A task trivially precedes itself (program order).

        Verdicts that survive the level-0 checks (the ones that would pay a
        backward search) are memoized in :attr:`cache`, keyed by the pair
        of current set representatives; the level-0 checks themselves are
        already cheaper than a table probe and stay uncached.
        """
        self.num_precede_queries += 1
        if a_key == b_key:
            return True
        a = self._nodes[a_key]
        b = self._nodes[b_key]
        sets = self._sets
        root_a, data_a = sets.root_and_metadata(a)
        # Level-0 checks are inlined (hot path: most queries resolve here
        # without allocating the visited set — per the HPC guides, this is
        # the measured bottleneck of every access-dominated benchmark).
        # They bump no counter: ``num_visits`` counts expansions only (see
        # __init__), and level-0 work is already implied by
        # ``num_precede_queries``.
        root_b, data_b = sets.root_and_metadata(b)
        if root_b is root_a:
            return True  # same disjoint set: tree-join/continue path exists
        la, lb = data_a.label, data_b.label
        if self.use_intervals:
            if la.pre <= lb.pre and lb.post <= la.post:
                return True  # A's set is an ancestor interval of B's set
        elif self._contains(root_a, data_a, root_b, data_b):
            return True
        if la.pre > data_b.max_pre:
            return False  # preorder prune (see _visit)
        if not data_b.nt and data_b.lsa is None and self.use_lsa:
            return False  # nothing to search backwards through
        cache = self.cache
        if cache is not None:
            cached = cache.lookup(root_a, root_b, self.mutation_epoch)
            if cached is not None:
                return cached
        self.num_visits += 1  # B's set is expanded by the _explore below
        visited = {root_b}
        verdict = self._explore(root_a, data_a, b, root_b, data_b, visited)
        if cache is not None:
            cache.store(root_a, root_b, verdict, self.mutation_epoch)
        return verdict

    def _visit(
        self,
        root_a: TaskNode,
        data_a: SetData,
        b: TaskNode,
        visited: set,
    ) -> bool:
        """``VISIT(A, B)`` — search for a path from A's set to B's set.

        ``visited`` holds set representatives already expanded.  With
        ``memoize_visit`` (the default, required for the Theorem 1 bound)
        entries are permanent, so each set is expanded at most once per
        query.  Without it, entries are removed on backtrack
        (:meth:`_explore`): the guard then only breaks cycles — the
        backward *set*-level graph can be cyclic even though the step graph
        is a DAG, because a merged set conflates tasks created before and
        after its non-tree sources — while cross-branch re-exploration (the
        cost the ablation measures) still happens.  Both modes compute the
        same backward-reachability verdict.

        ``num_visits`` is bumped only when the set is actually expanded
        (added to ``visited`` and handed to :meth:`_explore`) — level-0
        resolutions and already-visited probes are free, keeping the
        counter's "expansions only" semantics consistent with the inlined
        level-0 path of :meth:`precede`.
        """
        root_b, data_b = self._sets.root_and_metadata(b)
        if root_b is root_a:
            return True  # same disjoint set: tree-join/continue path exists
        la, lb = data_a.label, data_b.label
        if self.use_intervals:
            if la.pre <= lb.pre and lb.post <= la.post:
                return True  # A's set is an ancestor interval of B's set
        elif self._contains(root_a, data_a, root_b, data_b):
            return True
        if la.pre > data_b.max_pre:
            # Any path into B's set enters through an edge recorded by one
            # of its members; every such source predates the latest member,
            # so a set whose root-most task was created after *all* members
            # of B's set can never be reached backwards from it.
            return False
        if root_b in visited:
            return False
        visited.add(root_b)
        self.num_visits += 1
        found = self._explore(root_a, data_a, b, root_b, data_b, visited)
        if not found and not self.memoize_visit:
            visited.discard(root_b)
        return found

    def _explore(
        self,
        root_a: TaskNode,
        data_a: SetData,
        b: TaskNode,
        root_b: TaskNode,
        data_b: SetData,
        visited: set,
    ) -> bool:
        """Scan B's backward frontier: its set's non-tree predecessors and
        those of its (significant) ancestors.  ``root_b`` must already be
        in ``visited``."""
        # Immediate non-tree predecessors of B's set.
        for pred in data_b.nt:
            if self._visit(root_a, data_a, pred, visited):
                return True
        # Non-tree predecessors of B's (significant) ancestors: any join
        # recorded so far into an ancestor of the *currently executing*
        # B happened before B's branch was spawned, so it reaches B.
        expanded = None
        found = False
        if self.use_lsa:
            # Invariant: a set's lsa is always a *proper* ancestor of
            # the set's root-most member (merges keep the ancestor
            # side's metadata), so chain preorders strictly decrease
            # and the walk terminates.  A set already in `visited` has
            # had its nt list scanned, but its upward chain is exactly
            # this loop's continuation, so we keep walking either way.
            anc = data_b.lsa
            while anc is not None:
                root_anc, data_anc = self._sets.root_and_metadata(anc)
                if root_anc not in visited:
                    visited.add(root_anc)
                    self.num_visits += 1
                    if expanded is None:
                        expanded = [root_anc]
                    else:
                        expanded.append(root_anc)
                    for pred in data_anc.nt:
                        if self._visit(root_a, data_a, pred, visited):
                            found = True
                            break
                    if found:
                        break
                anc = data_anc.lsa
        else:
            # Ablation: walk every spawn-tree ancestor of B.
            anc_task = b.parent
            while anc_task is not None and not found:
                root_anc = self._sets.find(anc_task)
                if root_anc is not root_b and root_anc not in visited:
                    visited.add(root_anc)
                    self.num_visits += 1
                    if expanded is None:
                        expanded = [root_anc]
                    else:
                        expanded.append(root_anc)
                    preds = self._sets.get_metadata(root_anc).nt
                    for pred in preds:
                        if self._visit(root_a, data_a, pred, visited):
                            found = True
                            break
                anc_task = anc_task.parent
        if not self.memoize_visit and expanded is not None and not found:
            for root in expanded:
                visited.discard(root)
        return found

    def explain_precede(self, a_key: Hashable, b_key: Hashable) -> dict:
        """Replay ``PRECEDE(a, b)`` in read-only mode and return a
        JSON-able certificate of the verdict (the race-witness payload).

        Unlike :meth:`precede` this touches **nothing**: no counters, no
        cache lookups or stores — so building witnesses perturbs neither
        the structural columns (``num_precede_queries``/``num_visits``)
        nor cached verdicts.  The recorded walk is the default strategy
        (interval level-0 checks, memoized VISIT, LSA-chain ancestors);
        the verdict is the same reachability answer every ablation
        computes, asserted against :meth:`precede` by the witness
        soundness tests.

        Certificate layout (all task references are node keys)::

            {"query": {"a", "b"}, "verdict": bool,
             "a_label"/"b_label": {"pre", "post", "final"},
             "a_set"/"b_set": {"rep", "label", "max_pre", "nt", "lsa",
                               "members", "members_truncated"},
             "level0": {"same_task", "same_set", "interval_ancestor",
                        "preorder_pruned", "empty_frontier"},
             "search": None | {"expanded": [{"rep", "label", "via",
                                             "nt_scanned"}],
                               "lsa_chain": [...],
                               "frontier_exhausted": bool}}
        """
        a = self._nodes[a_key]
        b = self._nodes[b_key]
        sets = self._sets
        root_a, data_a = sets.root_and_metadata(a)
        root_b, data_b = sets.root_and_metadata(b)
        la = data_a.label

        def label_data(label: IntervalLabel) -> dict:
            return {"pre": label.pre, "post": label.post,
                    "final": label.final}

        def set_info(root: TaskNode, data: SetData) -> dict:
            members = [n.key for n in sets.members(root)]
            truncated = len(members) > 64
            return {
                "rep": root.key,
                "label": label_data(data.label),
                "max_pre": data.max_pre,
                "nt": [n.key for n in data.nt],
                "lsa": data.lsa.key if data.lsa is not None else None,
                "members": members[:64],
                "members_truncated": truncated,
            }

        level0 = {
            "same_task": a_key == b_key,
            "same_set": root_a is root_b,
            "interval_ancestor": data_a.label.contains(data_b.label),
            "preorder_pruned": la.pre > data_b.max_pre,
            "empty_frontier": not data_b.nt and data_b.lsa is None,
        }
        cert = {
            "query": {"a": a_key, "b": b_key},
            "a_label": label_data(a.label),
            "b_label": label_data(b.label),
            "a_set": set_info(root_a, data_a),
            "b_set": set_info(root_b, data_b),
            "level0": level0,
        }
        if (level0["same_task"] or level0["same_set"]
                or level0["interval_ancestor"]):
            cert["verdict"] = True
            cert["search"] = None
            return cert
        if level0["preorder_pruned"]:
            cert["verdict"] = False
            cert["search"] = None
            return cert

        # Backward search mirroring _visit/_explore with a memoized
        # visited set, recording every expansion and the LSA chain hops.
        expanded: list = []
        lsa_chain: list = []
        visited = {root_b}

        def visit(node: TaskNode, via: str) -> bool:
            root, data = sets.root_and_metadata(node)
            if root is root_a:
                return True
            if data_a.label.contains(data.label):
                return True
            if la.pre > data.max_pre:
                return False
            if root in visited:
                return False
            visited.add(root)
            expanded.append({
                "rep": root.key,
                "label": label_data(data.label),
                "via": via,
                "nt_scanned": [n.key for n in data.nt],
            })
            return explore(data)

        def explore(data: SetData) -> bool:
            for pred in data.nt:
                if visit(pred, "nt"):
                    return True
            anc = data.lsa
            while anc is not None:
                root_anc, data_anc = sets.root_and_metadata(anc)
                if root_anc not in visited:
                    visited.add(root_anc)
                    lsa_chain.append(root_anc.key)
                    expanded.append({
                        "rep": root_anc.key,
                        "label": label_data(data_anc.label),
                        "via": "lsa",
                        "nt_scanned": [n.key for n in data_anc.nt],
                    })
                    for pred in data_anc.nt:
                        if visit(pred, "nt"):
                            return True
                anc = data_anc.lsa
            return False

        expanded.append({
            "rep": root_b.key,
            "label": label_data(data_b.label),
            "via": "start",
            "nt_scanned": [n.key for n in data_b.nt],
        })
        found = explore(data_b)
        cert["verdict"] = found
        cert["search"] = {
            "expanded": expanded,
            "lsa_chain": lsa_chain,
            "frontier_exhausted": not found,
        }
        return cert

    def _contains(
        self,
        root_a: TaskNode,
        data_a: SetData,
        root_b: TaskNode,
        data_b: SetData,
    ) -> bool:
        """Set-level ancestor test: does A's set interval subsume B's?"""
        if self.use_intervals:
            return data_a.label.contains(data_b.label)
        # Ablation: O(depth) parent chase from B's set-root task.  The set
        # label belongs to the root-most member, which is the node whose
        # label object is the set's label; find it by walking up from root_b
        # until the label matches.
        target_label = data_a.label
        node: Optional[TaskNode] = root_b
        while node is not None:
            if node.label is target_label:
                return True
            node = node.parent
        return False

    # ------------------------------------------------------------------ #
    # Introspection (Table 1-style dumps, tests)                         #
    # ------------------------------------------------------------------ #
    def node(self, key: Hashable) -> TaskNode:
        """The :class:`TaskNode` registered for ``key``."""
        return self._nodes[key]

    def set_data(self, key: Hashable) -> SetData:
        """The :class:`SetData` of the set currently containing ``key``."""
        return self._sets.get_metadata(self._nodes[key])

    def same_set(self, a_key: Hashable, b_key: Hashable) -> bool:
        """True iff the two tasks are currently in the same disjoint set."""
        return self._sets.same_set(self._nodes[a_key], self._nodes[b_key])

    def non_tree_predecessors(self, key: Hashable) -> List[Hashable]:
        """Keys of the immediate non-tree predecessors of ``key``'s set
        (the paper's ``P``), in insertion order."""
        return [n.key for n in self.set_data(key).nt]

    def lsa_of(self, key: Hashable) -> Optional[Hashable]:
        """Key of the lowest significant ancestor of ``key``'s set (``A``)."""
        lsa = self.set_data(key).lsa
        return None if lsa is None else lsa.key

    def label_of(self, key: Hashable) -> IntervalLabel:
        """The task's *own* interval label (``L``)."""
        return self._nodes[key].label

    def partition(self) -> List[List[Hashable]]:
        """The full disjoint-set partition ``D`` as lists of task keys.

        Single pass over the nodes with one ``find`` each — O(n·α(n)).
        Output order is deterministic: groups appear in order of their
        first-created member, members within a group in creation order
        (used by Table 1 dumps and tests)."""
        groups: Dict[TaskNode, List[Hashable]] = {}
        for node in self._nodes.values():  # dict preserves creation order
            groups.setdefault(self._sets.find(node), []).append(node.key)
        return list(groups.values())

    def is_ancestor(self, a_key: Hashable, b_key: Hashable) -> bool:
        """Spawn-tree ancestor-or-self test via task-level interval labels."""
        return self._nodes[a_key].label.contains(self._nodes[b_key].label)
