"""First-class future handles.

``future<T> f = async<T> Expr;`` creates a child task evaluating ``Expr`` and
binds ``f`` to a handle on it; ``f.get()`` blocks until the task completes and
returns its value (Section 2).  Unlike async tasks, a future may be joined by
*any* task that holds the handle, and by many tasks — this is what produces
non-tree join edges and non-strict computation graphs.

Under the serial depth-first execution the child has always completed by the
time any ``get()`` can run, so ``get()`` never blocks; it still routes through
the runtime so every observer (race detector, graph builder, metrics) sees
the join edge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generic, TypeVar

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import Runtime
    from repro.runtime.task import Task

__all__ = ["FutureHandle"]

T = TypeVar("T")


class FutureHandle(Generic[T]):
    """Handle to a future task, supporting repeated ``get()`` by any task."""

    __slots__ = ("_runtime", "task")

    def __init__(self, runtime: "Runtime", task: "Task") -> None:
        self._runtime = runtime
        self.task = task

    def get(self) -> T:
        """Return the future task's value, recording a join edge.

        Every call — including repeated calls from the same task — is routed
        to the runtime's observers: the detector's Algorithm 4 decides
        per-call whether the join is a tree join (disjoint-set merge) or a
        non-tree join (predecessor-list insertion), and repeated gets are
        cheap no-ops once the producer is already in the consumer's set.
        """
        return self._runtime._on_get(self)

    @property
    def done(self) -> bool:
        """Whether the producing task has completed.

        Always true after creation under depth-first execution; exposed for
        API parity with conventional future libraries and used by the
        schedule simulator.
        """
        return self.task.completed

    def __repr__(self) -> str:
        return f"<FutureHandle of {self.task.name}>"
