"""Parallel-schedule simulation over computation graphs.

CPython's GIL prevents truly concurrent bytecodes, so we demonstrate the
paper's determinacy results (Appendix A.3) the way Definition 3 quantifies
them — over *all possible executions for a given input*: every parallel
execution's observable memory behaviour corresponds to some linear extension
of the computation graph's partial order.  This module samples and
constructs such extensions and evaluates their memory outcomes:

* the **final writer** of each location (functional determinism of final
  state), and
* the **writer seen by every read** (dag-consistency of intermediate
  values).

For race-free programs every extension yields identical outcomes (the
Determinism Property); for a program with a race on location ``l``,
:func:`demonstrate_nondeterminism` constructs two concrete schedules whose
outcomes differ on ``l`` — turning each race report into an executable
witness.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.graph.analysis import ReachabilityClosure
from repro.graph.computation_graph import ComputationGraph

__all__ = [
    "MemoryOutcome",
    "schedule_outcome",
    "random_linear_extension",
    "extension_preferring",
    "sample_outcomes",
    "is_determinate",
    "demonstrate_nondeterminism",
]


@dataclass(frozen=True)
class MemoryOutcome:
    """Observable memory behaviour of one schedule.

    ``final_writer[loc]`` is the step id of the last write to ``loc`` (or
    ``None``); ``read_sees[i]`` is, for the ``i``-th read in the graph's
    per-location access logs (flattened in (loc, index) order), the step id
    of the write it observed (``None`` = initial value).
    """

    final_writer: Tuple[Tuple[Hashable, Optional[int]], ...]
    read_sees: Tuple[Tuple[Hashable, int, Optional[int]], ...]

    def differs_from(self, other: "MemoryOutcome") -> List[str]:
        """Human-readable list of observable differences.

        Entries are aligned by location key (and, for reads, the read's
        per-location index), never positionally: two outcomes built from
        different graphs may enumerate locations in different orders or
        cover different location sets, and a positional ``zip`` would both
        misreport aligned pairs and silently drop the longer tail.
        Locations or reads present in only one outcome are reported too.
        """
        diffs = []
        final_a = dict(self.final_writer)
        final_b = dict(other.final_writer)
        locs = list(final_a) + [l for l in final_b if l not in final_a]
        for loc in sorted(locs, key=repr):
            if loc not in final_a:
                diffs.append(f"location {loc!r} only in other outcome")
            elif loc not in final_b:
                diffs.append(f"location {loc!r} only in this outcome")
            elif final_a[loc] != final_b[loc]:
                diffs.append(
                    f"final value of {loc!r}: "
                    f"step {final_a[loc]} vs {final_b[loc]}"
                )
        reads_a = {(loc, i): s for loc, i, s in self.read_sees}
        reads_b = {(loc, i): s for loc, i, s in other.read_sees}
        keys = list(reads_a) + [k for k in reads_b if k not in reads_a]
        for key in sorted(keys, key=lambda k: (repr(k[0]), k[1])):
            loc, i = key
            if key not in reads_a:
                diffs.append(f"read #{i} of {loc!r} only in other outcome")
            elif key not in reads_b:
                diffs.append(f"read #{i} of {loc!r} only in this outcome")
            elif reads_a[key] != reads_b[key]:
                diffs.append(
                    f"read #{i} of {loc!r} sees write "
                    f"{reads_a[key]} vs {reads_b[key]}"
                )
        return diffs


def _check_extension(graph: ComputationGraph, order: Sequence[int]) -> None:
    pos = {sid: i for i, sid in enumerate(order)}
    if len(pos) != graph.num_steps:
        raise ValueError("order must be a permutation of all steps")
    for src, dst, _ in graph.edges:
        if pos[src] > pos[dst]:
            raise ValueError(f"order violates edge {src} -> {dst}")


def schedule_outcome(
    graph: ComputationGraph, order: Sequence[int], *, validate: bool = True
) -> MemoryOutcome:
    """Evaluate the memory outcome of executing steps in ``order``.

    Writes are modeled as unique tokens (their step ids): two schedules have
    observably identical behaviour iff every location's final token and
    every read's observed token match.
    """
    if validate:
        _check_extension(graph, order)
    pos = {sid: i for i, sid in enumerate(order)}
    final: List[Tuple[Hashable, Optional[int]]] = []
    sees: List[Tuple[Hashable, int, Optional[int]]] = []
    for loc in sorted(graph.accesses_by_loc, key=repr):
        accesses = graph.accesses_by_loc[loc]
        # Execution order of this location's accesses under the schedule.
        ordered = sorted(accesses, key=lambda a: pos[a.step])
        last_write: Optional[int] = None
        read_index = 0
        by_original = {id(a): i for i, a in enumerate(accesses)}
        for acc in ordered:
            if acc.is_write:
                last_write = acc.step
            else:
                sees.append((loc, by_original[id(acc)], last_write))
                read_index += 1
        final.append((loc, last_write))
    sees.sort(key=lambda t: (repr(t[0]), t[1]))
    return MemoryOutcome(final_writer=tuple(final), read_sees=tuple(sees))


def random_linear_extension(
    graph: ComputationGraph, rng: random.Random
) -> List[int]:
    """A uniformly-randomized (not uniformly-distributed) topological order:
    Kahn's algorithm choosing uniformly among currently-ready steps — the
    standard model of an adversarial parallel scheduler."""
    indeg = [len(p) for p in graph.predecessors]
    ready = [i for i, d in enumerate(indeg) if d == 0]
    order: List[int] = []
    while ready:
        idx = rng.randrange(len(ready))
        ready[idx], ready[-1] = ready[-1], ready[idx]
        step = ready.pop()
        order.append(step)
        for succ in graph.successors[step]:
            indeg[succ] -= 1
            if indeg[succ] == 0:
                ready.append(succ)
    if len(order) != graph.num_steps:
        raise ValueError("computation graph contains a cycle")
    return order


def extension_preferring(
    graph: ComputationGraph, first: int, then: int
) -> List[int]:
    """A linear extension scheduling step ``first`` before step ``then``.

    Requires ``first ∥ then`` (or ``first ≺ then``); realized with Kahn's
    algorithm that defers ``then`` while anything else is ready.
    """
    indeg = [len(p) for p in graph.predecessors]
    heap = [i for i, d in enumerate(indeg) if d == 0]
    # Priority: the deferred step sorts last; everything else by id.
    key = lambda s: (1, s) if s == then else (0, s)
    heap = [(key(s), s) for s in heap]
    heapq.heapify(heap)
    # Deferring `then` suffices: if `then` ever becomes the only ready step
    # before `first` ran, every unemitted step (including `first`) would be
    # a descendant of `then`, contradicting `first ∥ then`.
    order: List[int] = []
    while heap:
        _, step = heapq.heappop(heap)
        order.append(step)
        for succ in graph.successors[step]:
            indeg[succ] -= 1
            if indeg[succ] == 0:
                heapq.heappush(heap, (key(succ), succ))
    if len(order) != graph.num_steps:
        raise ValueError("computation graph contains a cycle")
    pos = {s: i for i, s in enumerate(order)}
    if pos[first] > pos[then]:
        raise ValueError(
            f"no linear extension puts {first} before {then}: {then} ≺ {first}"
        )
    return order


def sample_outcomes(
    graph: ComputationGraph,
    *,
    samples: int = 20,
    seed: int = 0,
) -> List[MemoryOutcome]:
    """Outcomes of ``samples`` randomly scheduled executions."""
    rng = random.Random(seed)
    return [
        schedule_outcome(graph, random_linear_extension(graph, rng), validate=False)
        for _ in range(samples)
    ]


def is_determinate(
    graph: ComputationGraph,
    *,
    samples: int = 20,
    seed: int = 0,
) -> bool:
    """True if every sampled schedule yields the same observable outcome.

    A ``True`` answer is evidence, not proof (sampling); ``False`` is a
    definite witness of nondeterminism.  Race-free programs are guaranteed
    ``True`` by the Determinism Property — the property tests check that.
    """
    outcomes = sample_outcomes(graph, samples=samples, seed=seed)
    return all(o == outcomes[0] for o in outcomes[1:])


def demonstrate_nondeterminism(
    graph: ComputationGraph,
    loc: Hashable,
    closure: Optional[ReachabilityClosure] = None,
) -> Optional[Tuple[MemoryOutcome, MemoryOutcome]]:
    """Construct two schedules with observably different behaviour on
    ``loc``, if a race on ``loc`` permits it.

    Finds each logically-parallel conflicting pair and schedules it both
    ways.  Returns ``None`` when no pair produces an observable difference —
    which can legitimately happen even for unique write tokens: racing
    writes may both be masked by a later, ordered write and never read.
    This is the paper's "racy, yet determinate" caveat (Section 3) made
    executable.
    """
    closure = closure or ReachabilityClosure(graph)
    accesses = graph.accesses_by_loc.get(loc, [])

    def loc_view(outcome: MemoryOutcome):
        final = dict(outcome.final_writer).get(loc)
        reads = tuple(
            entry for entry in outcome.read_sees if entry[0] == loc
        )
        return final, reads

    for i, a in enumerate(accesses):
        for b in accesses[i + 1 :]:
            if not (a.is_write or b.is_write):
                continue
            if a.step != b.step and closure.parallel(a.step, b.step):
                order_ab = extension_preferring(graph, a.step, b.step)
                order_ba = extension_preferring(graph, b.step, a.step)
                out_ab = schedule_outcome(graph, order_ab, validate=False)
                out_ba = schedule_outcome(graph, order_ba, validate=False)
                # The two extensions may also reorder unrelated parallel
                # steps; only a difference *on loc* counts as a witness.
                if loc_view(out_ab) != loc_view(out_ba):
                    return out_ab, out_ba
    return None
