"""Accumulators — Habanero's race-free reduction primitive.

The NQueens test suite shows the textbook bug: parallel tasks incrementing
one shared counter.  Habanero-Java's answer is the *accumulator*: a
reduction cell registered with a finish scope; any task inside the scope
may ``put`` values; the combined result becomes readable only after the
scope closes.  Because ``put`` is part of the synchronization layer — not a
shared-memory access — a correct implementation is determinate by
construction (for commutative-associative operators) and the race detector
has nothing to flag.

Implementation: per-task partial results (each task touches only its own
slot — in a real parallel runtime these would be worker-local), folded in
task-creation order when the owning scope ends.  Folding in a fixed
(task-id) order makes the result deterministic even for merely associative
operators, mirroring HJ's deterministic reduction mode.

Usage::

    with rt.finish() as scope:
        acc = Accumulator(rt, scope, op=operator.add, identity=0)
        for i in range(n):
            rt.async_(lambda i=i: acc.put(score(i)))
    total = acc.get()   # only legal after the finish closed
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.runtime.errors import RuntimeStateError

__all__ = ["Accumulator"]


class Accumulator:
    """A finish-scoped reduction cell.

    Parameters
    ----------
    runtime:
        The owning runtime (used to identify the putting task).
    scope:
        The finish scope this accumulator is registered to.  ``get`` is
        legal only after the scope has closed; ``put`` only while it is
        open and only from the owner or tasks spawned within it.
    op:
        Binary combine function (commutative+associative for full
        schedule-independence; associative suffices for determinism here
        because partials fold in task-id order).
    identity:
        The reduction identity.
    """

    def __init__(
        self,
        runtime,
        scope,
        op: Callable[[Any, Any], Any],
        identity: Any,
    ) -> None:
        if scope.closed:
            raise RuntimeStateError(
                "cannot register an accumulator with a closed finish"
            )
        self._rt = runtime
        self._scope = scope
        self._op = op
        self._identity = identity
        self._partials: Dict[int, Any] = {}
        self._result: Optional[Any] = None
        self._folded = False

    def put(self, value: Any) -> None:
        """Contribute ``value`` from the current task.

        Accumulates into the task's private partial — no shared location is
        touched, so parallel puts cannot race (and the detector, correctly,
        stays silent).
        """
        if self._scope.closed:
            raise RuntimeStateError(
                "accumulator.put() after the owning finish closed"
            )
        task = self._rt.current_task
        if task is None:
            raise RuntimeStateError("accumulator.put() outside a program")
        tid = task.tid
        if tid in self._partials:
            self._partials[tid] = self._op(self._partials[tid], value)
        else:
            self._partials[tid] = value

    def get(self) -> Any:
        """The combined result; legal only after the owning finish closed.

        Folds the per-task partials in task-id (= spawn) order, which is
        schedule-independent, so the value is deterministic whenever ``op``
        is associative.
        """
        if not self._scope.closed:
            raise RuntimeStateError(
                "accumulator.get() before the owning finish closed — the "
                "reduction is not complete (this would be a determinacy "
                "leak, the accumulator equivalent of a data race)"
            )
        if not self._folded:
            result = self._identity
            for tid in sorted(self._partials):
                result = self._op(result, self._partials[tid])
            self._result = result
            self._folded = True
        return self._result

    @property
    def num_contributors(self) -> int:
        """How many distinct tasks have put values so far."""
        return len(self._partials)
