"""The runtime interface — one surface, three execution substrates.

The paper's detector is specified against a *serial depth-first elision*
(Section 4.1), but the programming model it checks — ``async`` / ``finish``
/ ``future`` — is a parallel one.  :class:`RuntimeBase` captures the
surface every execution substrate provides so programs, the shared-memory
wrappers (:mod:`repro.memory.shared`) and the DSL interpreters
(:mod:`repro.testing.generator`) are runtime-agnostic:

=========================  ==================================================
Implementation             Execution order
=========================  ==================================================
:class:`~repro.runtime.runtime.Runtime`
                           serial depth-first elision (the reference; the
                           order Theorem 2's detector requires)
:class:`~repro.runtime.executor.ThreadRuntime`
                           work-stealing ``threading`` pool — real
                           preemptive parallelism, online detection via
                           :class:`~repro.core.parallel_detector.ParallelRaceDetector`
:class:`~repro.runtime.asyncio_runtime.AsyncioRuntime`
                           cooperative ``asyncio`` interleaving (async
                           bodies; ``get`` awaits, ``finish`` is an async
                           scope)
=========================  ==================================================

The contract every implementation honours:

* ``run(program)`` executes ``program(self)`` as the main task inside the
  implicit root finish scope, dispatching the full
  :class:`~repro.core.events.ExecutionObserver` protocol (init, task
  create/end, get, finish start/end, read, write, shutdown) with Task /
  FinishScope argument objects.  Instances are single-use.
* ``async_`` / ``future`` spawn child tasks; ``finish()`` is a scope whose
  exit waits for every task spawned inside it; ``get`` joins a future.
* ``record_read(loc)`` / ``record_write(loc)`` broadcast shared-memory
  accesses attributed to the calling task.
* Observer dispatch ordering: a task's ``on_task_end`` happens before any
  ``on_get`` naming it as producer and before its finish scope's
  ``on_finish_end`` — detectors may rely on producers being finalized at
  join time (the vector-clock engines do).

Only the *event order* differs between substrates: the serial runtime
emits the depth-first order, the concurrent ones emit whatever order the
schedule produced.  Detectors that assume depth-first order (the DTRG
family) pair with the serial runtime; schedule-robust detectors
(:class:`~repro.core.parallel_detector.ParallelRaceDetector`) pair with
any of them.  See README "Choosing a runtime".
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    List,
    Optional,
    Protocol,
    TypeVar,
    runtime_checkable,
)

from repro.core.events import ExecutionObserver

__all__ = ["RuntimeBase"]

T = TypeVar("T")


@runtime_checkable
class RuntimeBase(Protocol):
    """Structural protocol implemented by every execution substrate.

    ``typing.Protocol`` rather than an ABC: the serial
    :class:`~repro.runtime.runtime.Runtime` predates this interface and
    satisfies it structurally without inheriting anything, and callers
    (tools, interpreters, memory wrappers) only ever duck-type against
    this surface.
    """

    # -- observer management ------------------------------------------- #
    def add_observer(self, observer: ExecutionObserver) -> None:
        """Register an observer; only allowed before :meth:`run`."""
        ...

    @property
    def observers(self) -> List[ExecutionObserver]:
        ...

    # -- program execution --------------------------------------------- #
    def run(self, program: Callable[..., T]) -> T:
        """Execute ``program(self)`` as the main task (single-use)."""
        ...

    # -- parallel constructs ------------------------------------------- #
    def async_(
        self,
        body: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
        **kwargs: Any,
    ) -> Any:
        """``async { body(...) }`` — spawn a fire-and-forget task."""
        ...

    def future(
        self,
        body: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
        **kwargs: Any,
    ) -> Any:
        """``future<T> f = async<T> body(...)`` — spawn a future task."""
        ...

    def finish(self):
        """``finish { ... }`` as a (possibly async) context manager."""
        ...

    def get(self, handle: Any) -> Any:
        """Null-checked join on a future handle."""
        ...

    # -- shared-memory instrumentation --------------------------------- #
    def record_read(self, loc) -> None:
        """Report a read of shared location ``loc`` by the current task."""
        ...

    def record_write(self, loc) -> None:
        """Report a write of shared location ``loc`` by the current task."""
        ...

    # -- introspection -------------------------------------------------- #
    @property
    def num_tasks(self) -> int:
        ...
