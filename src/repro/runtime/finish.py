"""Finish scopes.

``finish { S }`` causes the executing task to run ``S`` and then wait for
every task transitively spawned inside ``S`` to complete.  In the computation
graph this inserts a *join edge from the last step of every such task* to the
step immediately following the finish (Section 3, "Join Edges").

In the serial depth-first execution that the detector observes, every spawned
task has already completed by the time the finish ends, so a scope is pure
bookkeeping: it records which tasks have it as their Immediately Enclosing
Finish (``joins`` — the paper's ``F.joins`` used by Algorithm 6) so the
detector can merge their disjoint sets into the parent's set at end-finish.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.task import Task

__all__ = ["FinishScope"]


class FinishScope:
    """One dynamic instance of a ``finish`` statement.

    Attributes
    ----------
    fid:
        Dense id in scope-entry order; the implicit root finish is 0.
    owner:
        The task whose code entered the scope (the paper's ``F.parent``).
    enclosing:
        The dynamically enclosing finish scope (``None`` for the root).
    joins:
        Tasks whose IEF is this scope, in completion order.  Algorithm 6
        iterates this list merging each ``S_B`` into ``S_A`` where ``A`` is
        the owner.
    """

    __slots__ = ("fid", "owner", "enclosing", "joins", "closed")

    def __init__(
        self,
        fid: int,
        owner: "Task",
        enclosing: Optional["FinishScope"],
    ) -> None:
        self.fid = fid
        self.owner = owner
        self.enclosing = enclosing
        self.joins: List["Task"] = []
        self.closed = False

    def register(self, task: "Task") -> None:
        """Record ``task`` as having this scope for its IEF."""
        if self.closed:
            raise ValueError(f"finish scope {self.fid} is already closed")
        self.joins.append(task)

    @property
    def depth(self) -> int:
        """Nesting depth of this scope (root is 0)."""
        d, scope = 0, self.enclosing
        while scope is not None:
            d += 1
            scope = scope.enclosing
        return d

    def __repr__(self) -> str:
        return (
            f"<FinishScope {self.fid} owner={self.owner.name} "
            f"joins={len(self.joins)}{' closed' if self.closed else ''}>"
        )
