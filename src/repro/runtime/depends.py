"""OpenMP-style task dependences lowered onto futures.

Section 5 explains how Jacobi and Strassen were obtained: "The original
versions of these benchmarks used the OpenMP 4.0 ``depends`` clause, in
which tasks specify data dependence using ``in``, ``out`` and ``inout``
clauses.  The translated versions of these benchmarks used future as the
main parallel construct, with ``get()`` operations used to synchronize with
previously data dependent tasks."

:class:`DependsTaskGroup` packages that translation as a reusable layer: a
task declares the abstract locations it reads (``in_``) and writes
(``out``/``inout``); the group computes which previously-submitted sibling
tasks it must wait for and prepends the corresponding ``get()`` calls to its
body.  Because the waits run *inside* the spawned future, the resulting join
edges are sibling-to-sibling — exactly the non-tree joins that distinguish
this paper's detector from the async-finish family.

Dependence rules (serializing semantics of OpenMP 4.0):

* ``in``    — waits for the last task that declared the location ``out``;
* ``out``/``inout`` — waits for the last writer *and* every reader that
  declared ``in`` on the location since that writer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, Iterable, List

from repro.runtime.future import FutureHandle

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import Runtime

__all__ = ["DependsTaskGroup"]


class DependsTaskGroup:
    """A group of sibling tasks ordered by declared data dependences."""

    def __init__(self, runtime: "Runtime") -> None:
        self._rt = runtime
        self._last_writer: Dict[Hashable, FutureHandle] = {}
        self._readers_since_write: Dict[Hashable, List[FutureHandle]] = {}
        self._all: List[FutureHandle] = []

    def task(
        self,
        body: Callable[..., Any],
        *args: Any,
        in_: Iterable[Hashable] = (),
        out: Iterable[Hashable] = (),
        inout: Iterable[Hashable] = (),
        name: str | None = None,
        **kwargs: Any,
    ) -> FutureHandle:
        """Submit ``body`` with the given dependence clauses.

        Returns the future so callers can also join explicitly.  Dependences
        are deduplicated while preserving first-wait order.
        """
        reads = list(in_) + list(inout)
        writes = list(out) + list(inout)
        deps: List[FutureHandle] = []
        seen: set = set()

        def want(handle: FutureHandle | None) -> None:
            if handle is not None and id(handle) not in seen:
                seen.add(id(handle))
                deps.append(handle)

        for loc in reads:
            want(self._last_writer.get(loc))
        for loc in writes:
            want(self._last_writer.get(loc))
            for reader in self._readers_since_write.get(loc, ()):
                want(reader)

        def wrapper() -> Any:
            for dep in deps:
                dep.get()
            return body(*args, **kwargs)

        handle = self._rt.future(wrapper, name=name)
        for loc in reads:
            self._readers_since_write.setdefault(loc, []).append(handle)
        for loc in writes:
            self._last_writer[loc] = handle
            self._readers_since_write[loc] = []
        self._all.append(handle)
        return handle

    def wait_all(self) -> None:
        """Join every submitted task (an OpenMP ``taskwait`` over the group).

        The calling task performs the gets, so these joins are tree joins
        when the caller created the tasks — the group's internal
        synchronization stays purely point-to-point.
        """
        for handle in self._all:
            handle.get()

    def __len__(self) -> int:
        return len(self._all)
