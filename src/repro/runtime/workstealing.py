"""Multiprocessor scheduling simulation over computation graphs.

The paper's testbed is a 16-core machine, but its detector runs on a
1-processor depth-first execution; the *parallel* behaviour of the analyzed
programs lives entirely in their computation graphs.  This module closes
that loop: given a recorded graph it simulates executing the steps on ``p``
workers, yielding makespans, speedup curves and scheduler statistics — the
Cilk-style performance model (work/span/parallelism) that motivates using
futures over barriers in the first place (the §5 remark that Jacobi-style
dependences "cannot be represented using only async-finish constructs
without loss of parallelism" becomes a measurable speedup gap here, see
``benchmarks/bench_speedup.py``).

Two schedulers:

* :func:`greedy_schedule` — level-synchronized greedy list scheduling: at
  every time unit all ``p`` workers grab ready steps.  Satisfies Brent's
  bound ``T_p <= T_1/p + T_inf`` (property-tested).
* :class:`WorkStealingSimulator` — randomized work stealing with per-worker
  LIFO deques and random-victim steals, the Blumofe-Leiserson model the
  Habanero/Cilk runtimes implement.  Reports steal counts.

Step weights default to ``1 + number of recorded shared accesses`` so
access-heavy steps take proportionally longer; pass ``unit_weights=True``
for pure step counting.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.graph.computation_graph import ComputationGraph

__all__ = [
    "ScheduleStats",
    "step_weights",
    "greedy_schedule",
    "WorkStealingSimulator",
    "speedup_curve",
]


def step_weights(
    graph: ComputationGraph, unit_weights: bool = False
) -> List[int]:
    """Per-step execution costs."""
    if unit_weights:
        return [1] * graph.num_steps
    return [1 + len(step.accesses) for step in graph.steps]


@dataclass
class ScheduleStats:
    """Outcome of one simulated parallel execution."""

    workers: int
    makespan: int            #: simulated time units
    work: int                #: sum of step weights (T_1)
    span: int                #: critical-path weight (T_inf)
    busy: int                #: worker-time units spent executing
    steals: int = 0          #: successful steals (work stealing only)
    failed_steals: int = 0

    @property
    def speedup(self) -> float:
        return self.work / self.makespan if self.makespan else 0.0

    @property
    def utilization(self) -> float:
        total = self.makespan * self.workers
        return self.busy / total if total else 0.0

    def satisfies_brent_bound(self) -> bool:
        """``T_p <= ceil(T_1/p) + T_inf`` (greedy-scheduler guarantee)."""
        import math

        return self.makespan <= math.ceil(self.work / self.workers) + self.span


def _critical_path(graph: ComputationGraph, weights: Sequence[int]) -> int:
    n = graph.num_steps
    dist = [0] * n
    for i in range(n):
        di = dist[i] + weights[i]
        for j in graph.successors[i]:
            if di > dist[j]:
                dist[j] = di
    return max(
        (dist[i] + weights[i] for i in range(n)), default=0
    )


def greedy_schedule(
    graph: ComputationGraph,
    workers: int,
    *,
    unit_weights: bool = False,
) -> ScheduleStats:
    """Level-synchronized greedy scheduling of the graph on ``workers``."""
    if workers < 1:
        raise ValueError("need at least one worker")
    weights = step_weights(graph, unit_weights)
    n = graph.num_steps
    indeg = [len(p) for p in graph.predecessors]
    # deque: same FIFO order as a list popped from the front, but each
    # popleft is O(1) — list.pop(0) made wide graphs O(n^2).
    ready: deque = deque(i for i, d in enumerate(indeg) if d == 0)
    remaining: Dict[int, int] = {}  # step -> time left (running steps)
    time = 0
    done = 0
    busy = 0
    while done < n:
        # Fill idle workers from the ready pool (FIFO: oldest first).
        while ready and len(remaining) < workers:
            step = ready.popleft()
            remaining[step] = weights[step]
        if not remaining:
            raise ValueError("computation graph contains a cycle")
        # Advance time by the smallest remaining cost (event-driven).
        delta = min(remaining.values())
        time += delta
        busy += delta * len(remaining)
        finished = [s for s, r in remaining.items() if r == delta]
        for step in list(remaining):
            remaining[step] -= delta
            if remaining[step] == 0:
                del remaining[step]
        for step in finished:
            done += 1
            for succ in graph.successors[step]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
    return ScheduleStats(
        workers=workers,
        makespan=time,
        work=sum(weights),
        span=_critical_path(graph, weights),
        busy=busy,
    )


class WorkStealingSimulator:
    """Randomized work stealing over a computation graph.

    Each worker owns a LIFO deque.  When a step completes, its newly
    enabled successors are pushed onto the finishing worker's deque (the
    continuation-first discipline).  An idle worker picks a victim
    uniformly at random among the *other* workers and probes the *top*
    (oldest end) of its deque: a non-empty deque yields the stolen step, an
    empty one is a failed steal.  Either way the attempt costs the worker
    that time unit — a stolen step starts executing on the next cycle, and
    a failed attempt leaves the worker idle for the cycle.  With a single
    worker there is no victim to probe, so no attempt is counted.

    When an :class:`repro.obs.Observability` sink is passed, every executed
    step becomes a duration span on its worker's track and every steal
    attempt an instant, all stamped with the *virtual* cycle clock (one
    simulated cycle = 1us in the trace) so Perfetto renders the simulated
    schedule itself.
    """

    def __init__(
        self,
        graph: ComputationGraph,
        workers: int,
        *,
        seed: int = 0,
        unit_weights: bool = False,
        obs=None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.graph = graph
        self.workers = workers
        self.rng = random.Random(seed)
        self.weights = step_weights(graph, unit_weights)
        self._obs = (
            obs if obs is not None and getattr(obs, "enabled", False) else None
        )

    def run(self) -> ScheduleStats:
        graph, workers = self.graph, self.workers
        n = graph.num_steps
        indeg = [len(p) for p in graph.predecessors]
        deques: List[List[int]] = [[] for _ in range(workers)]
        # Roots go to worker 0 (the "main" worker).
        for i, d in enumerate(indeg):
            if d == 0:
                deques[0].append(i)
        current: List[Optional[int]] = [None] * workers
        left: List[int] = [0] * workers
        time = 0
        done = 0
        busy = 0
        steals = 0
        failed = 0
        rng = self.rng
        obs = self._obs
        while done < n:
            # 1. assign work; steal attempts burn the coming time unit.
            stealing = [False] * workers
            for w in range(workers):
                if current[w] is None:
                    if deques[w]:
                        step = deques[w].pop()  # LIFO: own work from the bottom
                        current[w] = step
                        left[w] = self.weights[step]
                    elif workers > 1:
                        # Uniform random victim among the other workers;
                        # probing an empty deque is the failed steal.
                        victim = rng.randrange(workers - 1)
                        if victim >= w:
                            victim += 1
                        depth = len(deques[victim])
                        if deques[victim]:
                            step = deques[victim].pop(0)  # steal oldest
                            current[w] = step
                            left[w] = self.weights[step]
                            stealing[w] = True
                            steals += 1
                        else:
                            failed += 1
                        if obs is not None:
                            obs.ws_steal(
                                w, victim, time,
                                hit=stealing[w], victim_depth=depth,
                            )
            # 2. advance one time unit
            time += 1
            for w in range(workers):
                step = current[w]
                if step is None or stealing[w]:
                    continue  # idle, or paying for the steal this cycle
                busy += 1
                left[w] -= 1
                if left[w] == 0:
                    current[w] = None
                    done += 1
                    if obs is not None:
                        obs.ws_step(
                            w, step, time - self.weights[step],
                            self.weights[step],
                        )
                    for succ in graph.successors[step]:
                        indeg[succ] -= 1
                        if indeg[succ] == 0:
                            deques[w].append(succ)
            if done < n and all(c is None for c in current) and not any(
                deques
            ):
                raise ValueError("computation graph contains a cycle")
        return ScheduleStats(
            workers=workers,
            makespan=time,
            work=sum(self.weights),
            span=_critical_path(graph, self.weights),
            busy=busy,
            steals=steals,
            failed_steals=failed,
        )


def speedup_curve(
    graph: ComputationGraph,
    worker_counts: Sequence[int] = (1, 2, 4, 8, 16),
    *,
    scheduler: str = "greedy",
    seed: int = 0,
    unit_weights: bool = False,
) -> Dict[int, ScheduleStats]:
    """Simulate the graph at several worker counts."""
    out: Dict[int, ScheduleStats] = {}
    for p in worker_counts:
        if scheduler == "greedy":
            out[p] = greedy_schedule(graph, p, unit_weights=unit_weights)
        elif scheduler == "work-stealing":
            out[p] = WorkStealingSimulator(
                graph, p, seed=seed, unit_weights=unit_weights
            ).run()
        else:
            raise ValueError(f"unknown scheduler {scheduler!r}")
    return out
