"""Serial depth-first runtime for async / finish / future programs.

This is the execution substrate the paper's detector requires: "the
representation assumes that the input program is executed serially in
depth-first order" (Section 4.1).  Concretely:

* ``async { S }`` runs the child body *immediately and to completion*, then
  resumes the parent — the serial-elision order of Appendix A.1.
* ``future<T> f = async<T> Expr`` likewise evaluates ``Expr`` inline and
  returns a completed :class:`~repro.runtime.future.FutureHandle`; ``get()``
  therefore never blocks, but still reports the join edge to observers.
* ``finish { S }`` is a context manager; because children complete inline, it
  waits for nothing at runtime but tells observers which tasks joined it.

Every synchronization boundary and (via :mod:`repro.memory.shared`) every
shared-memory access is broadcast to the registered
:class:`~repro.core.events.ExecutionObserver` instances — the race detector,
the computation-graph builder, the metrics collector, baselines, or a trace
recorder, in any combination.

Usage::

    from repro import Runtime, DeterminacyRaceDetector, SharedArray

    det = DeterminacyRaceDetector()
    rt = Runtime(observers=[det])
    data = SharedArray(rt, "data", [0] * 4)

    def program(rt):
        with rt.finish():
            rt.async_(lambda: data.write(0, 1))
            f = rt.future(lambda: data.read(0))   # race with the async!
        return f.get()

    rt.run(program)
    print(det.report.races)

Hot-path note (per the HPC guides: optimize the measured bottleneck): the
observer dispatch for reads/writes is the innermost loop of every benchmark,
so hooks are pre-bound into flat lists at :meth:`Runtime.run` and the
read/write paths avoid attribute lookups and allocation.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Iterable, List, Optional, TypeVar

from repro.core.events import ExecutionObserver
from repro.runtime.errors import NullFutureError, RuntimeStateError
from repro.runtime.finish import FinishScope
from repro.runtime.future import FutureHandle
from repro.runtime.task import Task, TaskKind

__all__ = ["Runtime"]

T = TypeVar("T")


class Runtime:
    """Serial depth-first executor with pluggable instrumentation.

    Parameters
    ----------
    observers:
        Instrumentation consumers, invoked in registration order at every
        boundary.  The list is fixed once :meth:`run` starts.
    obs:
        Optional :class:`repro.obs.Observability` sink: task lifetimes and
        finish scopes become Perfetto duration spans, ``get()`` joins
        become instants.  ``None`` (default) or a disabled object adds no
        work anywhere.
    provenance:
        Optional :class:`repro.obs.provenance.RaceProvenance` flight
        recorder.  When enabled, its adapter observer is inserted *ahead*
        of ``observers`` so every spawn/get/read/write is tagged with its
        call site before any detector or recorder sees the event.  The
        hot paths are untouched either way — with provenance off the
        dispatch loops simply do not contain the adapter, so the disabled
        path executes the exact pre-provenance bytecode.
    """

    def __init__(
        self,
        observers: Iterable[ExecutionObserver] = (),
        *,
        obs=None,
        provenance=None,
    ) -> None:
        self._observers: List[ExecutionObserver] = list(observers)
        if provenance is not None and getattr(provenance, "enabled", False):
            self._observers.insert(0, provenance.observer())
        self._obs = (
            obs if obs is not None and getattr(obs, "enabled", False) else None
        )
        self._running = False
        # Execution state (valid only while running).
        self.main_task: Optional[Task] = None
        self.current_task: Optional[Task] = None
        self._finish_stack: List[FinishScope] = []
        self._next_tid = 0
        self._next_fid = 0
        # Pre-bound hot-path hook lists (rebuilt at run()).
        self._read_hooks: List[Callable] = []
        self._write_hooks: List[Callable] = []

    # ------------------------------------------------------------------ #
    # Observer management                                                #
    # ------------------------------------------------------------------ #
    def add_observer(self, observer: ExecutionObserver) -> None:
        """Register an observer; only allowed before :meth:`run`."""
        if self._running:
            raise RuntimeStateError("cannot add observers while running")
        self._observers.append(observer)

    @property
    def observers(self) -> List[ExecutionObserver]:
        return list(self._observers)

    # ------------------------------------------------------------------ #
    # Program execution                                                  #
    # ------------------------------------------------------------------ #
    def run(self, program: Callable[["Runtime"], T]) -> T:
        """Execute ``program(self)`` as the main task.

        Creates the main task and the implicit root finish scope around its
        body ("there is an implicit finish scope surrounding the body of
        main()", Section 2), runs the program serially depth-first, and
        returns its result.  A runtime instance can run one program at a
        time but may be reused sequentially only with fresh state — reuse is
        rejected to keep task ids meaningful across observers.
        """
        if self._running:
            raise RuntimeStateError("runtime is already running a program")
        if self._next_tid != 0:
            raise RuntimeStateError(
                "runtime instances are single-use; create a new Runtime"
            )
        self._running = True
        self._read_hooks = [ob.on_read for ob in self._observers]
        self._write_hooks = [ob.on_write for ob in self._observers]

        main = Task(self._alloc_tid(), TaskKind.MAIN, parent=None, ief=None)
        self.main_task = main
        self.current_task = main
        for ob in self._observers:
            ob.on_init(main)
        obs = self._obs
        if obs is not None:
            obs.task_begin(main.tid, main.name, False)

        root = FinishScope(self._alloc_fid(), owner=main, enclosing=None)
        self._finish_stack.append(root)
        for ob in self._observers:
            ob.on_finish_start(root)
        if obs is not None:
            obs.finish_begin(root.fid, main.tid)
        try:
            result = program(self)
        finally:
            self._finish_stack.pop()
            root.closed = True
            self._running = False
        for ob in self._observers:
            ob.on_finish_end(root)
        main.completed = True
        for ob in self._observers:
            ob.on_task_end(main)
            ob.on_shutdown(main)
        if obs is not None:
            obs.finish_end(root.fid)
            obs.task_end(main.tid)
        self.current_task = None
        return result

    # ------------------------------------------------------------------ #
    # Parallel constructs                                                #
    # ------------------------------------------------------------------ #
    def async_(
        self,
        body: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
        **kwargs: Any,
    ) -> Task:
        """``async { body(*args, **kwargs) }`` — spawn a fire-and-forget task.

        The child runs immediately (depth-first) and its completed
        :class:`Task` is returned for introspection; there is no handle to
        join on — synchronization happens through the enclosing ``finish``.
        """
        return self._spawn(TaskKind.ASYNC, body, args, kwargs, name)

    def future(
        self,
        body: Callable[..., T],
        *args: Any,
        name: Optional[str] = None,
        **kwargs: Any,
    ) -> FutureHandle[T]:
        """``future<T> f = async<T> body(...)`` — spawn a future task.

        Returns a :class:`FutureHandle` whose ``get()`` reports a join edge
        and yields the body's return value.
        """
        task = self._spawn(TaskKind.FUTURE, body, args, kwargs, name)
        return FutureHandle(self, task)

    @contextlib.contextmanager
    def finish(self):
        """``finish { ... }`` as a context manager."""
        current = self._require_current()
        scope = FinishScope(
            self._alloc_fid(), owner=current, enclosing=self._finish_stack[-1]
        )
        # Dispatch before pushing: a rejecting observer (e.g. a baseline
        # raising UnsupportedConstructError) must leave the stack intact.
        for ob in self._observers:
            ob.on_finish_start(scope)
        obs = self._obs
        if obs is not None:
            obs.finish_begin(scope.fid, current.tid)
        self._finish_stack.append(scope)
        try:
            yield scope
        except BaseException:
            # Abandon this scope — and any nested scopes the exception
            # left open — without masking the propagating error.
            while self._finish_stack and self._finish_stack[-1] is not scope:
                self._finish_stack.pop().closed = True
            if self._finish_stack and self._finish_stack[-1] is scope:
                self._finish_stack.pop()
            scope.closed = True
            raise
        top = self._finish_stack.pop()
        if top is not scope:  # pragma: no cover - defensive
            raise RuntimeStateError("finish scopes exited out of order")
        scope.closed = True
        if self.current_task is not current:
            raise RuntimeStateError(
                "finish scope must end in the task that started it"
            )
        for ob in self._observers:
            ob.on_finish_end(scope)
        if obs is not None:
            obs.finish_end(scope.fid)

    def forall(
        self,
        iterable,
        body: Callable[..., Any],
        *,
        name: Optional[str] = None,
    ) -> None:
        """``forall (item in iterable) { body(item) }`` — HJ's parallel
        loop sugar: a finish scope containing one async per item."""
        with self.finish():
            for index, item in enumerate(iterable):
                self.async_(
                    body, item,
                    name=f"{name or 'forall'}[{index}]",
                )

    def get(self, handle: Optional[FutureHandle[T]]) -> T:
        """Null-checked ``get`` helper.

        Raises :class:`NullFutureError` when ``handle`` is ``None`` — the
        depth-first manifestation of the Appendix A deadlock: the handle's
        publishing write raced with this read and lost.
        """
        if handle is None:
            raise NullFutureError(
                "get() on a null future reference: in a parallel execution "
                "this program can deadlock (Appendix A)"
            )
        return handle.get()

    # ------------------------------------------------------------------ #
    # Shared-memory instrumentation entry points                         #
    # ------------------------------------------------------------------ #
    def record_read(self, loc) -> None:
        """Report a read of shared location ``loc`` by the current task."""
        task = self.current_task
        if task is None:
            raise RuntimeStateError("shared read outside a running program")
        for hook in self._read_hooks:
            hook(task, loc)

    def record_write(self, loc) -> None:
        """Report a write of shared location ``loc`` by the current task."""
        task = self.current_task
        if task is None:
            raise RuntimeStateError("shared write outside a running program")
        for hook in self._write_hooks:
            hook(task, loc)

    # ------------------------------------------------------------------ #
    # Internals                                                          #
    # ------------------------------------------------------------------ #
    def _spawn(
        self,
        kind: TaskKind,
        body: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        name: Optional[str],
    ) -> Task:
        parent = self._require_current()
        ief = self._finish_stack[-1]
        child = Task(self._alloc_tid(), kind, parent=parent, ief=ief, name=name)
        parent.num_children += 1
        ief.register(child)
        for ob in self._observers:
            ob.on_task_create(parent, child)
        obs = self._obs
        if obs is not None:
            obs.task_begin(child.tid, child.name, child.is_future)
        # Depth-first: run the child to completion right now.
        self.current_task = child
        try:
            child.value = body(*args, **kwargs)
        except BaseException as exc:
            child.exception = exc
            raise
        finally:
            self.current_task = parent
        child.completed = True
        for ob in self._observers:
            ob.on_task_end(child)
        if obs is not None:
            obs.task_end(child.tid)
        return child

    def _on_get(self, handle: FutureHandle) -> Any:
        consumer = self._require_current()
        producer = handle.task
        if not producer.completed:  # pragma: no cover - impossible under DFS
            raise RuntimeStateError(
                f"get() on incomplete task {producer.name}; depth-first "
                "execution violated"
            )
        for ob in self._observers:
            ob.on_get(consumer, producer)
        obs = self._obs
        if obs is not None:
            obs.on_get(consumer.tid, producer.tid)
        return producer.value

    def _require_current(self) -> Task:
        task = self.current_task
        if task is None:
            raise RuntimeStateError(
                "parallel construct used outside Runtime.run()"
            )
        return task

    def _alloc_tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def _alloc_fid(self) -> int:
        fid = self._next_fid
        self._next_fid += 1
        return fid

    @property
    def num_tasks(self) -> int:
        """Total tasks created so far (including main)."""
        return self._next_tid

    @property
    def current_finish(self) -> Optional[FinishScope]:
        """Innermost active finish scope, if a program is running."""
        return self._finish_stack[-1] if self._finish_stack else None
