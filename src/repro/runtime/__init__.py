"""Execution substrates for async/finish/future programs: the serial
depth-first elision (Section 2 model), the work-stealing ThreadRuntime,
the cooperative AsyncioRuntime — all behind the RuntimeBase protocol —
plus the parallel-execution analyses built on recorded computation
graphs."""

from repro.runtime.accumulator import Accumulator
from repro.runtime.asyncio_runtime import AsyncioRuntime
from repro.runtime.base import RuntimeBase
from repro.runtime.depends import DependsTaskGroup
from repro.runtime.errors import (
    NullFutureError,
    RaceError,
    ReproError,
    RuntimeStateError,
    UnsupportedConstructError,
)
from repro.runtime.executor import ThreadRuntime
from repro.runtime.finish import FinishScope
from repro.runtime.future import FutureHandle
from repro.runtime.runtime import Runtime
from repro.runtime.task import Task, TaskKind
from repro.runtime.workstealing import (
    ScheduleStats,
    WorkStealingSimulator,
    greedy_schedule,
    speedup_curve,
)

__all__ = [
    "Runtime",
    "RuntimeBase",
    "ThreadRuntime",
    "AsyncioRuntime",
    "Task",
    "TaskKind",
    "FinishScope",
    "FutureHandle",
    "DependsTaskGroup",
    "Accumulator",
    "ScheduleStats",
    "WorkStealingSimulator",
    "greedy_schedule",
    "speedup_curve",
    "ReproError",
    "RuntimeStateError",
    "NullFutureError",
    "RaceError",
    "UnsupportedConstructError",
]
