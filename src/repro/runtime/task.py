"""Dynamic task instances for the async/finish/future programming model.

Section 2 of the paper: a *task* is a dynamic instance created by ``async``
(fire-and-forget), by ``async<T>`` (future task, returning a value through a
handle), or the implicit *main* task.  Every task has

* a unique parent in the **spawn tree** (except main),
* an **Immediately Enclosing Finish** (IEF): the innermost ``finish`` scope
  dynamically active at its spawn; the implicit finish around ``main()``
  guarantees every task has one,
* for future tasks, a return value retrievable via
  :class:`repro.runtime.future.FutureHandle.get`.

Tasks here are *descriptions plus bookkeeping*; execution order is owned by
:class:`repro.runtime.runtime.Runtime`, which runs the program in serial
depth-first order (the order the paper's detector requires).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.finish import FinishScope

__all__ = ["Task", "TaskKind"]


class TaskKind(enum.Enum):
    """The three task flavors of the programming model."""

    MAIN = "main"      #: the implicit root task
    ASYNC = "async"    #: fire-and-forget; joined only via its IEF
    FUTURE = "future"  #: returns a value; joined via get() and via its IEF

    def __repr__(self) -> str:
        return f"TaskKind.{self.name}"


class Task:
    """One dynamic task instance.

    Attributes
    ----------
    tid:
        Dense integer id in spawn (= serial depth-first preorder) order.
        The main task has ``tid == 0``.
    kind:
        :class:`TaskKind` of this instance.
    parent:
        Spawn-tree parent (``None`` for main).
    ief:
        The task's Immediately Enclosing Finish scope (``None`` only for
        main, whose IEF is the implicit root finish created by the runtime).
    name:
        Optional human-readable label used in race reports and DOT dumps.
    depth:
        Spawn-tree depth (main is 0); handy for tests and metrics.
    """

    __slots__ = (
        "tid",
        "kind",
        "parent",
        "ief",
        "name",
        "depth",
        "value",
        "exception",
        "completed",
        "num_children",
    )

    def __init__(
        self,
        tid: int,
        kind: TaskKind,
        parent: Optional["Task"],
        ief: Optional["FinishScope"],
        name: Optional[str] = None,
    ) -> None:
        self.tid = tid
        self.kind = kind
        self.parent = parent
        self.ief = ief
        self.name = name or f"{kind.value}#{tid}"
        self.depth = 0 if parent is None else parent.depth + 1
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        self.completed = False
        self.num_children = 0

    # ------------------------------------------------------------------ #
    @property
    def is_future(self) -> bool:
        """True iff this is a future task (the detector's ``IsFuture``)."""
        return self.kind is TaskKind.FUTURE

    @property
    def is_main(self) -> bool:
        return self.kind is TaskKind.MAIN

    def is_ancestor_of(self, other: "Task") -> bool:
        """True iff ``self`` is a proper ancestor of ``other`` in the spawn
        tree.  O(depth) pointer chase — used by tests and baselines, not by
        the DTRG (which answers this in O(1) via interval labels)."""
        node = other.parent
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False

    def ancestors(self):
        """Yield proper ancestors from parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def __repr__(self) -> str:
        return f"<Task {self.name} tid={self.tid}>"
