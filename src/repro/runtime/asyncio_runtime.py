"""AsyncioRuntime — async/finish/future on the ``asyncio`` event loop.

The third execution substrate behind :class:`~repro.runtime.base.RuntimeBase`
(ROADMAP item 1): cooperative single-threaded concurrency.

* ``async``/``future`` spawn → :meth:`asyncio.loop.create_task` — each
  model task is one ``asyncio.Task`` running the body (a coroutine
  function, awaited; a plain callable is invoked and its result awaited
  if awaitable);
* future ``get()`` → ``await`` — the consumer suspends until the
  producer's done event, so the program text drives real suspension
  points;
* ``finish`` → a structured-concurrency scope (``async with
  rt.finish():``) whose exit awaits every task registered in the scope,
  including tasks those tasks transitively spawn with the same IEF.

There is no preemption and no shared-memory tearing — but the *event
order* is whatever the loop's ready queue produces, which is nothing
like the serial depth-first elision (a parent runs past a spawn before
the child starts; siblings interleave at every ``await``).  Detectors
that assume depth-first order (the DTRG family) are therefore just as
wrong here as under real threads; pair this runtime with
:class:`~repro.core.parallel_detector.ParallelRaceDetector`, whose
verdicts are schedule-robust.  No locks are needed anywhere: observer
dispatch is serialized by the single loop thread, which trivially
satisfies the §15 locking contract.

The per-task context (current task + finish stack) lives in a
:class:`contextvars.ContextVar`: ``asyncio`` gives every task a copy of
the spawning context, and the task wrapper's first action is installing
a *fresh* context object — sharing the parent's mutable finish stack
across concurrently-live tasks would corrupt scope tracking.
"""

from __future__ import annotations

import asyncio
import contextlib
import contextvars
import inspect
from typing import Any, Callable, Dict, Iterable, List, Optional, TypeVar

from repro.core.events import ExecutionObserver
from repro.runtime.errors import NullFutureError, RuntimeStateError
from repro.runtime.finish import FinishScope
from repro.runtime.future import FutureHandle
from repro.runtime.task import Task, TaskKind

__all__ = ["AsyncioRuntime"]

T = TypeVar("T")


class _TaskCtx:
    __slots__ = ("task", "finish_stack")

    def __init__(self, task: Task) -> None:
        self.task = task
        self.finish_stack: List[FinishScope] = (
            [] if task.ief is None else [task.ief]
        )


class AsyncioRuntime:
    """Cooperative ``asyncio`` executor for async/finish/future programs.

    ``run(program)`` expects an ``async def program(rt)`` and drives it
    with :func:`asyncio.run`.  Task bodies may be coroutine functions
    (awaited) or plain callables.  Instances are single-use.

    Parameters mirror the other runtimes; ``provenance`` is rejected
    when enabled (call-site attribution assumes the serial elision).
    """

    def __init__(
        self,
        observers: Iterable[ExecutionObserver] = (),
        *,
        obs=None,
        provenance=None,
    ) -> None:
        if provenance is not None and getattr(provenance, "enabled", False):
            raise ValueError(
                "AsyncioRuntime does not support provenance: call-site "
                "attribution assumes the serial depth-first elision; run "
                "the serial Runtime for --explain"
            )
        self._observers: List[ExecutionObserver] = list(observers)
        self._obs = (
            obs if obs is not None and getattr(obs, "enabled", False) else None
        )
        self._running = False
        self._next_tid = 0
        self._next_fid = 0
        self.main_task: Optional[Task] = None
        self._ctx_var: contextvars.ContextVar[Optional[_TaskCtx]] = (
            contextvars.ContextVar("repro_asyncio_ctx", default=None)
        )
        self._done: Dict[int, asyncio.Event] = {}
        #: fid -> asyncio.Tasks registered in the scope, not yet awaited.
        self._scope_tasks: Dict[int, List[asyncio.Task]] = {}
        self._read_hooks: List[Callable] = []
        self._write_hooks: List[Callable] = []
        #: tids whose exception was already delivered at a get() — the
        #: enclosing finish does not re-raise those.
        self._delivered: set = set()

    # ------------------------------------------------------------------ #
    # Observer management                                                #
    # ------------------------------------------------------------------ #
    def add_observer(self, observer: ExecutionObserver) -> None:
        """Register an observer; only allowed before :meth:`run`."""
        if self._running:
            raise RuntimeStateError("cannot add observers while running")
        self._observers.append(observer)

    @property
    def observers(self) -> List[ExecutionObserver]:
        return list(self._observers)

    # ------------------------------------------------------------------ #
    # Program execution                                                  #
    # ------------------------------------------------------------------ #
    def run(self, program: Callable[["AsyncioRuntime"], Any]) -> Any:
        """Execute ``async def program(rt)`` to completion."""
        if not (
            inspect.iscoroutinefunction(program)
            or inspect.iscoroutinefunction(
                getattr(program, "__call__", None)
            )
        ):
            raise TypeError(
                "AsyncioRuntime.run expects an async program: define it "
                "as `async def program(rt)` (the serial and threaded "
                "runtimes take the synchronous form)"
            )
        if self._running:
            raise RuntimeStateError("runtime is already running a program")
        if self._next_tid != 0:
            raise RuntimeStateError(
                "runtime instances are single-use; create a new "
                "AsyncioRuntime"
            )
        return asyncio.run(self._main(program))

    async def _main(self, program) -> Any:
        self._running = True
        self._read_hooks = [ob.on_read for ob in self._observers]
        self._write_hooks = [ob.on_write for ob in self._observers]
        main = Task(self._next_tid, TaskKind.MAIN, parent=None, ief=None)
        self._next_tid += 1
        self.main_task = main
        ctx = _TaskCtx(main)
        self._ctx_var.set(ctx)
        obs = self._obs
        for ob in self._observers:
            ob.on_init(main)
        if obs is not None:
            obs.task_begin(main.tid, main.name, False)
        root = FinishScope(self._next_fid, owner=main, enclosing=None)
        self._next_fid += 1
        self._scope_tasks[root.fid] = []
        for ob in self._observers:
            ob.on_finish_start(root)
        if obs is not None:
            obs.finish_begin(root.fid, main.tid)
        ctx.finish_stack.append(root)
        try:
            result = await program(self)
        except BaseException:
            await self._drain_scope(root)
            root.closed = True
            self._running = False
            raise
        ctx.finish_stack.pop()
        await self._drain_scope(root)
        root.closed = True
        self._running = False
        self._raise_child_failure(root)
        for ob in self._observers:
            ob.on_finish_end(root)
        main.completed = True
        for ob in self._observers:
            ob.on_task_end(main)
            ob.on_shutdown(main)
        if obs is not None:
            obs.finish_end(root.fid)
            obs.task_end(main.tid)
        return result

    # ------------------------------------------------------------------ #
    # Parallel constructs                                                #
    # ------------------------------------------------------------------ #
    def async_(
        self,
        body: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
        **kwargs: Any,
    ) -> Task:
        """``async { body(...) }`` — spawn; returns the model Task."""
        return self._spawn(TaskKind.ASYNC, body, args, kwargs, name)

    def future(
        self,
        body: Callable[..., T],
        *args: Any,
        name: Optional[str] = None,
        **kwargs: Any,
    ) -> FutureHandle[T]:
        """``future<T> f = async<T> body(...)``; ``await handle.get()``."""
        task = self._spawn(TaskKind.FUTURE, body, args, kwargs, name)
        return FutureHandle(self, task)

    @contextlib.asynccontextmanager
    async def finish(self):
        """``finish { ... }`` — ``async with rt.finish():``; exit awaits
        every task whose IEF is this scope."""
        ctx = self._require_ctx()
        current = ctx.task
        obs = self._obs
        scope = FinishScope(
            self._next_fid, owner=current, enclosing=ctx.finish_stack[-1]
        )
        self._next_fid += 1
        self._scope_tasks[scope.fid] = []
        for ob in self._observers:
            ob.on_finish_start(scope)
        if obs is not None:
            obs.finish_begin(scope.fid, current.tid)
        ctx.finish_stack.append(scope)
        try:
            yield scope
        except BaseException:
            while ctx.finish_stack and ctx.finish_stack[-1] is not scope:
                ctx.finish_stack.pop().closed = True
            if ctx.finish_stack and ctx.finish_stack[-1] is scope:
                ctx.finish_stack.pop()
            await self._drain_scope(scope)
            scope.closed = True
            raise
        top = ctx.finish_stack.pop()
        if top is not scope:  # pragma: no cover - defensive
            raise RuntimeStateError("finish scopes exited out of order")
        await self._drain_scope(scope)
        scope.closed = True
        self._raise_child_failure(scope)
        for ob in self._observers:
            ob.on_finish_end(scope)
        if obs is not None:
            obs.finish_end(scope.fid)

    def get(self, handle: Optional[FutureHandle[T]]):
        """Null-checked ``get``; returns an awaitable of the value."""
        if handle is None:
            raise NullFutureError(
                "get() on a null future reference: the handle's publishing "
                "write raced with this read (Appendix A)"
            )
        return handle.get()

    # ------------------------------------------------------------------ #
    # Shared-memory instrumentation entry points                         #
    # ------------------------------------------------------------------ #
    def record_read(self, loc) -> None:
        """Report a read of ``loc`` by the current model task."""
        ctx = self._ctx_var.get()
        if ctx is None:
            raise RuntimeStateError("shared read outside a running task")
        task = ctx.task
        for hook in self._read_hooks:
            hook(task, loc)

    def record_write(self, loc) -> None:
        """Report a write of ``loc`` by the current model task."""
        ctx = self._ctx_var.get()
        if ctx is None:
            raise RuntimeStateError("shared write outside a running task")
        task = ctx.task
        for hook in self._write_hooks:
            hook(task, loc)

    # ------------------------------------------------------------------ #
    # Internals                                                          #
    # ------------------------------------------------------------------ #
    def _spawn(
        self,
        kind: TaskKind,
        body: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        name: Optional[str],
    ) -> Task:
        ctx = self._require_ctx()
        parent = ctx.task
        ief = ctx.finish_stack[-1]
        child = Task(self._next_tid, kind, parent=parent, ief=ief, name=name)
        self._next_tid += 1
        parent.num_children += 1
        ief.register(child)
        self._done[child.tid] = asyncio.Event()
        for ob in self._observers:
            ob.on_task_create(parent, child)
        if self._obs is not None:
            self._obs.task_begin(child.tid, child.name, child.is_future)
        atask = asyncio.get_running_loop().create_task(
            self._run_task(child, body, args, kwargs), name=child.name
        )
        self._scope_tasks[ief.fid].append(atask)
        return child

    async def _run_task(
        self, task: Task, body: Callable, args: tuple, kwargs: dict
    ) -> None:
        # First action: install a fresh context — this asyncio task runs
        # in a *copy* of the spawn-time context, so the set is task-local
        # and the parent's mutable finish stack is never shared.
        self._ctx_var.set(_TaskCtx(task))
        try:
            if inspect.iscoroutinefunction(body):
                task.value = await body(*args, **kwargs)
            else:
                result = body(*args, **kwargs)
                if inspect.isawaitable(result):
                    result = await result
                task.value = result
        except BaseException as exc:  # stored, re-raised at join points
            task.exception = exc
        for ob in self._observers:
            ob.on_task_end(task)
        if self._obs is not None:
            self._obs.task_end(task.tid)
        # Done signal strictly after on_task_end (RuntimeBase contract):
        # awaiting consumers observe a finalized producer.
        task.completed = True
        self._done[task.tid].set()

    async def _on_get(self, handle: FutureHandle) -> Any:
        ctx = self._require_ctx()
        consumer = ctx.task
        producer = handle.task
        if not producer.completed:
            await self._done[producer.tid].wait()
        for ob in self._observers:
            ob.on_get(consumer, producer)
        if self._obs is not None:
            self._obs.on_get(consumer.tid, producer.tid)
        if producer.exception is not None:
            self._delivered.add(producer.tid)
            raise producer.exception
        return producer.value

    async def _drain_scope(self, scope: FinishScope) -> None:
        # Tasks already in the scope may spawn more with the same IEF
        # while we await, so drain in rounds until the list stays empty.
        pending = self._scope_tasks[scope.fid]
        while pending:
            batch = pending[:]
            del pending[: len(batch)]
            await asyncio.gather(*batch)

    def _raise_child_failure(self, scope: FinishScope) -> None:
        # Exceptions already delivered at a get() are handled; the rest
        # re-raise at the finish boundary.
        for task in scope.joins:
            if task.exception is not None and task.tid not in self._delivered:
                raise task.exception

    def _require_ctx(self) -> _TaskCtx:
        ctx = self._ctx_var.get()
        if ctx is None:
            raise RuntimeStateError(
                "parallel construct used outside a running task"
            )
        return ctx

    @property
    def current_task(self) -> Optional[Task]:
        """The model task the calling coroutine belongs to, if any."""
        ctx = self._ctx_var.get()
        return ctx.task if ctx is not None else None

    @property
    def num_tasks(self) -> int:
        """Total tasks created so far (including main)."""
        return self._next_tid
