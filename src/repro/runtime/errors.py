"""Runtime and detector error types.

Appendix A of the paper shows that, for async/finish/future programs, a
deadlock can only arise from a data race on a *future reference*: in the
serial depth-first execution such a program does not block — it instead reads
a reference that has not yet been written (the Java version would raise a
``NullPointerException``).  :class:`NullFutureError` is our rendering of that
diagnostic; the race detector independently flags the underlying race on the
shared reference cell.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "RuntimeStateError",
    "NullFutureError",
    "RaceError",
    "UnsupportedConstructError",
]


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class RuntimeStateError(ReproError):
    """A runtime API was used outside a running program, or misused
    (e.g. ``finish`` exited out of order, ``get`` outside any task)."""


class NullFutureError(ReproError):
    """``get()`` was performed on a missing/null future reference.

    In the serial depth-first execution this is how would-be deadlocks of the
    parallel program manifest (Appendix A): the reference assignment raced
    with the read and the depth-first schedule ordered the read first.
    """


class RaceError(ReproError):
    """Raised by a detector configured with the ``raise`` policy when the
    first determinacy race is found.  Carries the :class:`repro.core.races.Race`."""

    def __init__(self, race) -> None:
        super().__init__(str(race))
        self.race = race


class UnsupportedConstructError(ReproError):
    """A baseline detector observed a construct outside its model
    (e.g. SP-bags seeing a future ``get``, ESP-bags seeing a non-tree join)."""
