"""ThreadRuntime — a work-stealing threaded executor with online detection.

ROADMAP item 1: the serial :class:`~repro.runtime.runtime.Runtime` is the
*elision* of the async/finish/future model; this module is the model run
for real.  Tasks execute on a pool of ``threading`` workers scheduled by
the Blumofe–Leiserson discipline the simulator
(:mod:`repro.runtime.workstealing`) models in virtual time:

* each worker owns a LIFO deque — it pushes and pops freshly spawned
  tasks at the *newest* end (depth-first locally, like the serial
  elision);
* an idle worker steals from a uniformly random victim (never itself) at
  the *oldest* end — breadth-first globally, which is what bounds space
  and exposes parallelism;
* tasks spawned by non-worker threads (the caller running ``main``)
  land on a shared FIFO inject queue that every worker also polls.

**Blocking and compensation.**  ``get()`` on an incomplete future and
finish-scope exit are real blocking waits here.  A blocked worker cannot
"help" by running queued tasks on top of its stack — with futures that
deadlocks (the queued task may transitively ``get`` the very future the
pinned task below it must produce) — so the pool uses compensation
threads instead (the managed-blocker idea from java.util.concurrent's
ForkJoinPool): before a worker blocks, it starts a spare worker whenever
the runnable-worker count would drop below the configured parallelism
(bounded by ``max_threads``).  Because the task DAG is acyclic, some
runnable task always exists while anything is blocked, and a spare's
randomized-victim scan covers *every* deque before sleeping, so progress
is guaranteed.

**Online detection.**  Observers are dispatched during the parallel
execution under the two-tier locking discipline of ALGORITHM.md §15:

* *structural* events (init/spawn/task-end/get/finish) are rare and
  serialize under one exclusive lock, so every observer sees a single
  consistent structural order and
  :class:`~repro.core.parallel_detector.ParallelRaceDetector`'s
  ``mutation_epoch`` ticks atomically with the mutation;
* *access* events (read/write — the hot path) bypass the structural
  lock entirely and serialize only per location, via 64 striped locks
  (``hash(loc) % 64``), so checks on different locations genuinely
  overlap.

Pair this runtime with schedule-robust observers only — the DTRG
detector family assumes depth-first event order and is rejected by
``tools/racecheck.py`` for ``--runtime threads``; the supported engine
is :class:`~repro.core.parallel_detector.ParallelRaceDetector`, whose
location-level verdict is exact under any schedule (README "Choosing a
runtime").

Event-ordering guarantees (the :class:`~repro.runtime.base.RuntimeBase`
contract detectors rely on):

* a task's ``on_task_end`` is dispatched *before* its completion flag /
  done signal, hence before any ``on_get`` naming it as producer and
  before its IEF's pending count can reach zero — vector-clock engines
  always join against a frozen producer clock;
* ``on_finish_end`` is dispatched only after every task registered in
  the scope (including transitively spawned ones with the same IEF) has
  completed.
"""

from __future__ import annotations

import collections
import contextlib
import os
import random
import threading
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional, TypeVar

from repro.core.events import ExecutionObserver
from repro.runtime.errors import NullFutureError, RuntimeStateError
from repro.runtime.finish import FinishScope
from repro.runtime.future import FutureHandle
from repro.runtime.task import Task, TaskKind

__all__ = ["ThreadRuntime"]

T = TypeVar("T")

#: Number of striped per-location access locks.
_STRIPES = 64


class _TaskCtx:
    """Per-task execution context, owned by the thread running the task."""

    __slots__ = ("task", "finish_stack")

    def __init__(self, task: Task) -> None:
        self.task = task
        self.finish_stack: List[FinishScope] = (
            [] if task.ief is None else [task.ief]
        )


class _Slot:
    """One worker's deque plus its lock (appended atomically as a pair)."""

    __slots__ = ("lock", "deque")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.deque: collections.deque = collections.deque()


class ThreadRuntime:
    """Work-stealing threaded executor for async/finish/future programs.

    Parameters
    ----------
    observers:
        Instrumentation consumers.  Must be schedule-robust (see the
        module docstring); dispatched under the locking discipline above.
    workers:
        Target parallelism (worker thread count).  Defaults to
        ``min(4, os.cpu_count())``.  Compensation threads may temporarily
        exceed it while tasks block.
    obs:
        Optional :class:`repro.obs.Observability` sink: task/finish spans
        and get instants like the serial runtime, plus real-thread worker
        spans, per-task run spans and steal instants on
        ``exec-worker-<n>`` tracks.
    max_threads:
        Hard cap on pool size including compensation threads.
    steal_seed:
        Seed for the per-worker victim-selection RNGs (reproducible
        steal *attempt* sequences; the schedule itself remains
        nondeterministic, which is the point).
    provenance:
        Rejected when enabled: call-site flight recording assumes the
        serial depth-first runtime.  Use the serial ``Runtime`` (or
        ``racecheck --runtime serial --explain``).
    """

    def __init__(
        self,
        observers: Iterable[ExecutionObserver] = (),
        *,
        workers: Optional[int] = None,
        obs=None,
        max_threads: int = 256,
        steal_seed: int = 0,
        provenance=None,
    ) -> None:
        if provenance is not None and getattr(provenance, "enabled", False):
            raise ValueError(
                "ThreadRuntime does not support provenance: call-site "
                "attribution assumes the serial depth-first elision; run "
                "the serial Runtime for --explain"
            )
        self._observers: List[ExecutionObserver] = list(observers)
        self._obs = (
            obs if obs is not None and getattr(obs, "enabled", False) else None
        )
        if workers is None:
            workers = min(4, os.cpu_count() or 1)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._workers = workers
        self._max_threads = max(max_threads, workers)
        self._steal_seed = steal_seed
        self._running = False
        self._next_tid = 0
        self._next_fid = 0
        self.main_task: Optional[Task] = None
        # --- scheduling state -----------------------------------------
        self._slots: List[_Slot] = []
        self._inject: collections.deque = collections.deque()
        self._inject_lock = threading.Lock()
        self._work_cv = threading.Condition()
        self._work_version = 0
        self._shutdown = False
        self._threads: List[threading.Thread] = []
        self._tls = threading.local()
        # --- pool accounting (compensation) ---------------------------
        self._pool_lock = threading.Lock()
        self._live = 0
        self._blocked = 0
        # --- detection locking tiers ----------------------------------
        self._struct_lock = threading.Lock()
        self._stripes = [threading.Lock() for _ in range(_STRIPES)]
        # --- join/finish signalling -----------------------------------
        self._join_cv = threading.Condition()
        self._pending: Dict[int, int] = {}
        # --- pre-bound hot-path hook lists (rebuilt at run()) ---------
        self._read_hooks: List[Callable] = []
        self._write_hooks: List[Callable] = []
        #: tids whose exception was already delivered at a get() — the
        #: enclosing finish does not re-raise those (guarded by _join_cv).
        self._delivered: set = set()
        # --- stats ----------------------------------------------------
        self._stats_lock = threading.Lock()
        self.steals = 0
        self.failed_steals = 0
        self.compensation_threads = 0
        #: Per-stripe acquisition tallies for record_read/record_write;
        #: bumped while the stripe lock is held (the index is already in
        #: hand), read lock-free by the telemetry sampler.
        self._stripe_counts = [0] * _STRIPES

    # ------------------------------------------------------------------ #
    # Observer management                                                #
    # ------------------------------------------------------------------ #
    def add_observer(self, observer: ExecutionObserver) -> None:
        """Register an observer; only allowed before :meth:`run`."""
        if self._running:
            raise RuntimeStateError("cannot add observers while running")
        self._observers.append(observer)

    @property
    def observers(self) -> List[ExecutionObserver]:
        return list(self._observers)

    # ------------------------------------------------------------------ #
    # Program execution                                                  #
    # ------------------------------------------------------------------ #
    def run(self, program: Callable[["ThreadRuntime"], T]) -> T:
        """Execute ``program(self)`` as the main task on the caller thread.

        Spawned tasks run on the worker pool; the caller thread blocks at
        joins like any task.  Single-use, like the serial runtime.
        """
        if self._running:
            raise RuntimeStateError("runtime is already running a program")
        if self._next_tid != 0:
            raise RuntimeStateError(
                "runtime instances are single-use; create a new ThreadRuntime"
            )
        self._running = True
        self._read_hooks = [ob.on_read for ob in self._observers]
        self._write_hooks = [ob.on_write for ob in self._observers]

        main = Task(self._next_tid, TaskKind.MAIN, parent=None, ief=None)
        self._next_tid += 1
        self.main_task = main
        ctx = _TaskCtx(main)
        self._tls.ctx = ctx
        obs = self._obs
        with self._struct_lock:
            for ob in self._observers:
                ob.on_init(main)
            if obs is not None:
                obs.task_begin(main.tid, main.name, False)
            root = FinishScope(self._next_fid, owner=main, enclosing=None)
            self._next_fid += 1
            self._pending[root.fid] = 0
            for ob in self._observers:
                ob.on_finish_start(root)
            if obs is not None:
                obs.finish_begin(root.fid, main.tid)
        ctx.finish_stack.append(root)
        self._start_workers()
        try:
            try:
                result = program(self)
            except BaseException:
                # Abandon the root scope like the serial runtime — but
                # children are genuinely in flight here, so drain them
                # before tearing the pool down.
                self._wait_scope(root)
                root.closed = True
                raise
            ctx.finish_stack.pop()
            self._wait_scope(root)
            root.closed = True
            self._raise_child_failure(root)
            with self._struct_lock:
                for ob in self._observers:
                    ob.on_finish_end(root)
            main.completed = True
            with self._struct_lock:
                for ob in self._observers:
                    ob.on_task_end(main)
                    ob.on_shutdown(main)
                if obs is not None:
                    obs.finish_end(root.fid)
                    obs.task_end(main.tid)
            return result
        finally:
            self._stop_workers()
            self._running = False
            self._tls.ctx = None

    # ------------------------------------------------------------------ #
    # Parallel constructs                                                #
    # ------------------------------------------------------------------ #
    def async_(
        self,
        body: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
        **kwargs: Any,
    ) -> Task:
        """``async { body(...) }`` — spawn; the Task runs on the pool."""
        return self._spawn(TaskKind.ASYNC, body, args, kwargs, name)

    def future(
        self,
        body: Callable[..., T],
        *args: Any,
        name: Optional[str] = None,
        **kwargs: Any,
    ) -> FutureHandle[T]:
        """``future<T> f = async<T> body(...)`` — spawn a future task."""
        task = self._spawn(TaskKind.FUTURE, body, args, kwargs, name)
        return FutureHandle(self, task)

    @contextlib.contextmanager
    def finish(self):
        """``finish { ... }`` — scope exit blocks until every task spawned
        inside (transitively, with this scope as IEF) has completed."""
        ctx = self._require_ctx()
        current = ctx.task
        obs = self._obs
        with self._struct_lock:
            scope = FinishScope(
                self._next_fid, owner=current, enclosing=ctx.finish_stack[-1]
            )
            self._next_fid += 1
            self._pending[scope.fid] = 0
            for ob in self._observers:
                ob.on_finish_start(scope)
            if obs is not None:
                obs.finish_begin(scope.fid, current.tid)
        ctx.finish_stack.append(scope)
        try:
            yield scope
        except BaseException:
            while ctx.finish_stack and ctx.finish_stack[-1] is not scope:
                ctx.finish_stack.pop().closed = True
            if ctx.finish_stack and ctx.finish_stack[-1] is scope:
                ctx.finish_stack.pop()
            self._wait_scope(scope)
            scope.closed = True
            raise
        top = ctx.finish_stack.pop()
        if top is not scope:  # pragma: no cover - defensive
            raise RuntimeStateError("finish scopes exited out of order")
        self._wait_scope(scope)
        scope.closed = True
        self._raise_child_failure(scope)
        with self._struct_lock:
            for ob in self._observers:
                ob.on_finish_end(scope)
            if obs is not None:
                obs.finish_end(scope.fid)

    def forall(
        self,
        iterable,
        body: Callable[..., Any],
        *,
        name: Optional[str] = None,
    ) -> None:
        """``forall (item in iterable) { body(item) }``."""
        with self.finish():
            for index, item in enumerate(iterable):
                self.async_(
                    body, item,
                    name=f"{name or 'forall'}[{index}]",
                )

    def get(self, handle: Optional[FutureHandle[T]]) -> T:
        """Null-checked ``get``: blocks until the producer completes."""
        if handle is None:
            raise NullFutureError(
                "get() on a null future reference: the handle's publishing "
                "write raced with this read (Appendix A)"
            )
        return handle.get()

    # ------------------------------------------------------------------ #
    # Shared-memory instrumentation entry points                         #
    # ------------------------------------------------------------------ #
    def record_read(self, loc) -> None:
        """Report a read of ``loc`` — serialized per location (stripe)."""
        ctx = getattr(self._tls, "ctx", None)
        if ctx is None:
            raise RuntimeStateError("shared read outside a running task")
        task = ctx.task
        idx = hash(loc) % _STRIPES
        with self._stripes[idx]:
            self._stripe_counts[idx] += 1
            for hook in self._read_hooks:
                hook(task, loc)

    def record_write(self, loc) -> None:
        """Report a write of ``loc`` — serialized per location (stripe)."""
        ctx = getattr(self._tls, "ctx", None)
        if ctx is None:
            raise RuntimeStateError("shared write outside a running task")
        task = ctx.task
        idx = hash(loc) % _STRIPES
        with self._stripes[idx]:
            self._stripe_counts[idx] += 1
            for hook in self._write_hooks:
                hook(task, loc)

    # ------------------------------------------------------------------ #
    # Spawning and joining                                               #
    # ------------------------------------------------------------------ #
    def _spawn(
        self,
        kind: TaskKind,
        body: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        name: Optional[str],
    ) -> Task:
        ctx = self._require_ctx()
        parent = ctx.task
        ief = ctx.finish_stack[-1]
        obs = self._obs
        with self._struct_lock:
            child = Task(
                self._next_tid, kind, parent=parent, ief=ief, name=name
            )
            self._next_tid += 1
            parent.num_children += 1
            ief.register(child)
            self._pending[ief.fid] += 1
            for ob in self._observers:
                ob.on_task_create(parent, child)
            if obs is not None:
                obs.task_begin(child.tid, child.name, child.is_future)
        self._push((child, body, args, kwargs))
        return child

    def _on_get(self, handle: FutureHandle) -> Any:
        ctx = self._require_ctx()
        consumer = ctx.task
        producer = handle.task
        if not producer.completed:
            self._blocking_wait("get", lambda: producer.completed)
        with self._struct_lock:
            for ob in self._observers:
                ob.on_get(consumer, producer)
            if self._obs is not None:
                self._obs.on_get(consumer.tid, producer.tid)
        if producer.exception is not None:
            with self._join_cv:
                self._delivered.add(producer.tid)
            raise producer.exception
        return producer.value

    def _raise_child_failure(self, scope: FinishScope) -> None:
        # A failed future whose exception was already delivered at a
        # ``get()`` is considered handled; everything else re-raises here.
        for task in scope.joins:
            if task.exception is not None and task.tid not in self._delivered:
                raise task.exception

    def _wait_scope(self, scope: FinishScope) -> None:
        fid = scope.fid
        pending = self._pending
        if pending[fid]:
            self._blocking_wait("finish", lambda: pending[fid] == 0)

    def _blocking_wait(self, kind: str, predicate: Callable[[], bool]) -> None:
        """Block the calling thread until ``predicate`` holds.

        Worker threads register as blocked first, which may start a
        compensation worker so the pool keeps ``workers`` runnable
        threads (see the module docstring).  The timeout re-check is a
        belt-and-braces guard against lost wakeups, not a spin loop.
        """
        wid = getattr(self._tls, "worker_id", None)
        if wid is not None:
            self._before_block(wid, kind)
        try:
            with self._join_cv:
                while not predicate():
                    self._join_cv.wait(0.1)
        finally:
            if wid is not None:
                self._after_block()

    def _before_block(self, wid: int, kind: str) -> None:
        spawn = False
        with self._pool_lock:
            self._blocked += 1
            if (
                not self._shutdown
                and self._live - self._blocked < self._workers
                and self._live < self._max_threads
            ):
                self._live += 1
                self.compensation_threads += 1
                spawn = True
        if self._obs is not None:
            self._obs.exec_block(wid, kind)
        if spawn:
            self._start_one_worker()

    def _after_block(self) -> None:
        with self._pool_lock:
            self._blocked -= 1

    # ------------------------------------------------------------------ #
    # The work-stealing pool                                             #
    # ------------------------------------------------------------------ #
    def _start_workers(self) -> None:
        with self._pool_lock:
            self._live = self._workers
        for _ in range(self._workers):
            self._start_one_worker()

    def _start_one_worker(self) -> None:
        wid = len(self._slots)
        self._slots.append(_Slot())
        thread = threading.Thread(
            target=self._worker_loop, args=(wid,),
            name=f"repro-exec-{wid}", daemon=True,
        )
        self._threads.append(thread)
        thread.start()

    def _stop_workers(self) -> None:
        self._shutdown = True
        with self._work_cv:
            self._work_version += 1
            self._work_cv.notify_all()
        with self._join_cv:
            self._join_cv.notify_all()
        for thread in self._threads:
            thread.join()

    def _push(self, item: tuple) -> None:
        wid = getattr(self._tls, "worker_id", None)
        if wid is None:
            with self._inject_lock:
                self._inject.append(item)
        else:
            slot = self._slots[wid]
            with slot.lock:
                slot.deque.append(item)  # newest end (owner LIFO)
        with self._work_cv:
            self._work_version += 1
            self._work_cv.notify_all()

    def _worker_loop(self, wid: int) -> None:
        self._tls.worker_id = wid
        obs = self._obs
        if obs is not None:
            obs.exec_worker_begin(wid)
        rng = random.Random((self._steal_seed << 16) ^ 0x9E3779B1 ^ wid)
        try:
            while True:
                item = self._next_item(wid, rng)
                if item is None:
                    return  # shutdown
                self._execute(wid, item)
        finally:
            if obs is not None:
                obs.exec_worker_end(wid)

    def _next_item(self, wid: int, rng: random.Random) -> Optional[tuple]:
        while True:
            with self._work_cv:
                version = self._work_version
            item = self._try_pop(wid, rng)
            if item is not None:
                return item
            if self._shutdown:
                return None
            with self._work_cv:
                if self._work_version == version and not self._shutdown:
                    self._work_cv.wait(0.1)

    def _try_pop(self, wid: int, rng: random.Random) -> Optional[tuple]:
        # 1. Own deque, newest end (local depth-first, like the elision).
        slot = self._slots[wid]
        with slot.lock:
            if slot.deque:
                return slot.deque.pop()
        # 2. The shared inject queue (tasks spawned by the caller thread).
        with self._inject_lock:
            if self._inject:
                return self._inject.popleft()
        # 3. Steal: visit every other deque in uniformly random order,
        #    taking the *oldest* end (Blumofe–Leiserson).  Scanning all
        #    victims (not one probe) before sleeping guarantees progress.
        n = len(self._slots)
        if n > 1:
            victims = [v for v in range(n) if v != wid]
            rng.shuffle(victims)
            for victim in victims:
                vslot = self._slots[victim]
                with vslot.lock:
                    if vslot.deque:
                        item = vslot.deque.popleft()
                    else:
                        item = None
                if item is not None:
                    with self._stats_lock:
                        self.steals += 1
                    if self._obs is not None:
                        self._obs.exec_steal(wid, victim, hit=True)
                    return item
            with self._stats_lock:
                self.failed_steals += 1
            if self._obs is not None:
                self._obs.exec_steal(wid, victims[-1], hit=False)
        return None

    def _execute(self, wid: int, item: tuple) -> None:
        task, body, args, kwargs = item
        ctx = _TaskCtx(task)
        self._tls.ctx = ctx
        obs = self._obs
        start = perf_counter() if obs is not None else 0.0
        try:
            value: Any = body(*args, **kwargs)
            exc: Optional[BaseException] = None
        except BaseException as e:  # stored, re-raised at join points
            value, exc = None, e
        finally:
            self._tls.ctx = None
        with self._struct_lock:
            task.value = value
            task.exception = exc
            for ob in self._observers:
                ob.on_task_end(task)
            if obs is not None:
                obs.task_end(task.tid)
        if obs is not None:
            now = perf_counter()
            obs.exec_task_run(
                wid, task.tid, start * 1e6, (now - start) * 1e6
            )
        # Completion signal strictly after on_task_end: joiners woken
        # here observe a finalized (frozen-clock) producer.
        with self._join_cv:
            task.completed = True
            self._pending[task.ief.fid] -= 1
            self._join_cv.notify_all()

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #
    def _require_ctx(self) -> _TaskCtx:
        ctx = getattr(self._tls, "ctx", None)
        if ctx is None:
            raise RuntimeStateError(
                "parallel construct used outside a running task"
            )
        return ctx

    @property
    def current_task(self) -> Optional[Task]:
        """The task the *calling thread* is executing, if any."""
        ctx = getattr(self._tls, "ctx", None)
        return ctx.task if ctx is not None else None

    @property
    def num_tasks(self) -> int:
        """Total tasks created so far (including main)."""
        return self._next_tid

    @property
    def workers(self) -> int:
        """Configured target parallelism."""
        return self._workers

    @property
    def pool_size(self) -> int:
        """Worker threads started so far (including compensation)."""
        return len(self._threads)

    # ------------------------------------------------------------------ #
    # Live-telemetry introspection (lock-free, approximate)               #
    # ------------------------------------------------------------------ #
    @property
    def blocked(self) -> int:
        """Workers currently parked in a blocking ``get`` (approximate:
        read without ``_pool_lock``, so a sampler may see a value one
        transition stale — never negative state corruption, since it
        only ever reads)."""
        return self._blocked

    @property
    def stripe_acquisitions(self) -> List[int]:
        """Per-stripe acquisition counts of the record_read/record_write
        per-location locks (a copy; approximate under concurrency)."""
        return list(self._stripe_counts)

    def deque_depths(self) -> List[int]:
        """Current per-worker deque depths, sampled without taking slot
        locks.  ``len`` of a deque is a single C-level read, so each
        entry is individually coherent; the *vector* is not an atomic
        snapshot (ALGORITHM.md §16) — good enough for gauges, never used
        for scheduling decisions."""
        return [len(slot.deque) for slot in list(self._slots)]
